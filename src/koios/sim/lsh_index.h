// Random-hyperplane (SimHash) LSH index over token embeddings — the
// approximate alternative to the exact index that the paper notes can be
// plugged into the token stream ("the Faiss Index or minhash LSH can be
// plugged into the algorithm", §IV). With an approximate index Koios'
// results are exact *with respect to the neighbors the index returns*;
// recall is tunable via the number of tables.
#ifndef KOIOS_SIM_LSH_INDEX_H_
#define KOIOS_SIM_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/sim/similarity.h"

namespace koios::sim {

struct LshIndexSpec {
  size_t num_tables = 8;        // more tables => higher recall
  size_t bits_per_table = 12;   // longer keys => higher precision
  uint64_t seed = 7;
};

class CosineLshIndex : public SimilarityIndex {
 public:
  /// Indexes the covered subset of `vocabulary`; `sim` is used to score and
  /// order the candidates each bucket probe produces (so any downstream
  /// clamping matches the exact path).
  CosineLshIndex(std::vector<TokenId> vocabulary,
                 const embedding::EmbeddingStore* store,
                 const SimilarityFunction* sim, const LshIndexSpec& spec);

  std::optional<Neighbor> NextNeighbor(TokenId q, Score alpha) override;

  void ResetCursors() override;

  size_t MemoryUsageBytes() const override;

 private:
  struct Cursor {
    Score alpha = -1.0;  // threshold the α filter ran at
    std::vector<Neighbor> neighbors;
    size_t next = 0;
  };

  uint64_t SignatureOf(std::span<const float> vec, size_t table) const;
  Cursor BuildCursor(TokenId q, Score alpha) const;

  std::vector<TokenId> vocabulary_;
  const embedding::EmbeddingStore* store_;
  const SimilarityFunction* sim_;
  LshIndexSpec spec_;
  // hyperplanes_[table * bits + bit] is a dim-sized normal vector.
  std::vector<std::vector<float>> hyperplanes_;
  // One bucket map per table: signature -> token list.
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> tables_;
  std::unordered_map<TokenId, Cursor> cursors_;
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_LSH_INDEX_H_
