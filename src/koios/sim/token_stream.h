// The token stream Ie (paper §IV): a single global stream of tuples
// (query element, vocabulary token, similarity) in non-increasing
// similarity order, realized as one shared SimilarityIndex plus a priority
// queue P of size |Q| holding each query element's best unseen neighbor.
//
// Two details from the paper are implemented here:
//  * The stream stops producing for a query element once its next neighbor
//    falls below α (the index enforces the α cutoff).
//  * Each query element's *self-match* (sim = 1.0) is emitted the first
//    time the element is probed, provided the token occurs in the
//    repository vocabulary. This initializes every candidate's bounds with
//    its vanilla overlap and handles out-of-vocabulary elements (§V).
#ifndef KOIOS_SIM_TOKEN_STREAM_H_
#define KOIOS_SIM_TOKEN_STREAM_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "koios/sim/similarity.h"
#include "koios/util/types.h"

namespace koios::sim {

/// One tuple (qi, cj, sim(qi, cj)) of the stream.
struct StreamTuple {
  uint32_t query_pos = 0;          // position of qi within Q
  TokenId query_token = kInvalidToken;  // qi
  TokenId token = kInvalidToken;        // cj ∈ D
  Score sim = 0.0;
};

class TokenStream {
 public:
  /// `query`: the query set's tokens (distinct).
  /// `index`: shared neighbor index over the vocabulary D (cursors are
  ///          reset by this constructor).
  /// `alpha`: element similarity threshold (> 0).
  /// `in_vocabulary`: predicate telling whether a token occurs in D; used
  ///          to decide if a self-match tuple should be emitted.
  TokenStream(std::vector<TokenId> query, SimilarityIndex* index, Score alpha,
              std::function<bool(TokenId)> in_vocabulary);

  /// Next tuple in non-increasing similarity order, or nullopt when every
  /// query element's stream is exhausted (below α) — or, with a positive
  /// `stop_sim`, when the next tuple's similarity is below it (the θlb
  /// feedback loop: refinement consumers publish a similarity under which
  /// no unseen set can reach the top-k, so tuples below it are withheld
  /// instead of ordered, scored and materialized). Callers may only raise
  /// `stop_sim` across calls; once a tuple is withheld the stream counts as
  /// *stopped* rather than exhausted (see stopped() / stop_sim()).
  std::optional<StreamTuple> Next(Score stop_sim = 0.0);

  /// True if a positive stop threshold ever withheld a tuple; the stream
  /// then ended early (above α) instead of draining.
  bool stopped() const { return stopped_; }

  /// Sound upper bound on the similarity of every pair the stream did NOT
  /// emit (0 while nothing was withheld): the maximum over all withheld
  /// tuples' similarity bounds. This is the slack consumers must keep in
  /// their final upper bounds when the stream stops early.
  Score stop_sim() const { return stop_sim_; }

  /// Similarity of the next tuple Next() would consider (nullopt when the
  /// heap is empty, i.e. every element's cursor is exhausted or withheld).
  std::optional<Score> PeekSim() const {
    if (heap_.empty()) return std::nullopt;
    return heap_.top().sim;
  }

  /// Number of tuples emitted so far.
  size_t emitted() const { return emitted_; }

  const std::vector<TokenId>& query() const { return query_; }
  Score alpha() const { return alpha_; }

  size_t MemoryUsageBytes() const;

 private:
  struct Entry {
    Score sim;
    uint32_t query_pos;
    TokenId token;
    bool operator<(const Entry& other) const {
      // std::priority_queue is a max-heap on operator<; order by sim, then
      // deterministically by (query_pos, token).
      if (sim != other.sim) return sim < other.sim;
      if (query_pos != other.query_pos) return query_pos > other.query_pos;
      return token > other.token;
    }
  };

  /// Probe the index for query position `pos` and push the result (if any).
  /// A positive `stop_sim` makes the probe stop-bounded: a below-threshold
  /// neighbor is withheld (recorded in stop_sim_) instead of pushed.
  void Refill(uint32_t pos, Score stop_sim = 0.0);

  std::vector<TokenId> query_;
  SimilarityIndex* index_;
  Score alpha_;
  std::priority_queue<Entry> heap_;
  size_t emitted_ = 0;
  bool stopped_ = false;
  Score stop_sim_ = 0.0;  // max bound over withheld tuples
};

}  // namespace koios::sim

#endif  // KOIOS_SIM_TOKEN_STREAM_H_
