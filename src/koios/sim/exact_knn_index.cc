#include "koios/sim/exact_knn_index.h"

#include <algorithm>
#include <future>
#include <utility>

#include "koios/util/thread_pool.h"

namespace koios::sim {

namespace {

// Descending similarity, token id as the deterministic tie-break. The lazy
// chunked ordering and the eager full sort agree because this comparator is
// a strict total order.
inline bool NeighborBefore(const Neighbor& a, const Neighbor& b) {
  if (a.sim != b.sim) return a.sim > b.sim;
  return a.token < b.token;
}

}  // namespace

ExactKnnIndex::ExactKnnIndex(std::vector<TokenId> vocabulary,
                             const SimilarityFunction* sim,
                             util::ThreadPool* pool)
    : vocabulary_(std::move(vocabulary)), sim_(sim), pool_(pool) {}

ExactKnnIndex::Cursor ExactKnnIndex::BuildCursor(TokenId q,
                                                 Score alpha) const {
  Cursor cursor;
  cursor.alpha = alpha;
  // One batched scan of the vocabulary, then the α filter over the flat
  // score array. thread_local scratch: Prewarm runs builds concurrently.
  thread_local std::vector<Score> scores;
  scores.resize(vocabulary_.size());
  sim_->SimilarityBatch(q, vocabulary_, scores);
  for (size_t i = 0; i < vocabulary_.size(); ++i) {
    const TokenId t = vocabulary_[i];
    if (t == q) continue;  // self-matches are injected by the token stream
    if (scores[i] >= alpha) cursor.neighbors.push_back({t, scores[i]});
  }
  return cursor;
}

void ExactKnnIndex::EnsureOrdered(Cursor& cursor, size_t count) {
  const size_t wanted = std::min(count, cursor.neighbors.size());
  while (cursor.sorted_prefix < wanted) {
    // Chunks double as consumption deepens: nth_element costs O(remaining)
    // per round, so a flat chunk would make a full drain (the EdgeCache
    // materializes the whole stream today) quadratic. Doubling keeps short
    // prefixes cheap and bounds full consumption at O(m log m), matching
    // the eager sort this replaced.
    const size_t chunk = std::max(kSortChunk, cursor.sorted_prefix);
    const size_t chunk_end =
        std::min(cursor.sorted_prefix + chunk, cursor.neighbors.size());
    const auto first = cursor.neighbors.begin() +
                       static_cast<ptrdiff_t>(cursor.sorted_prefix);
    const auto nth =
        cursor.neighbors.begin() + static_cast<ptrdiff_t>(chunk_end - 1);
    // Partition the next chunk's members in front of everything ranked
    // after them, then order the chunk itself.
    std::nth_element(first, nth, cursor.neighbors.end(), NeighborBefore);
    std::sort(first, nth + 1, NeighborBefore);
    cursor.sorted_prefix = chunk_end;
  }
}

std::optional<Neighbor> ExactKnnIndex::NextNeighbor(TokenId q, Score alpha) {
  auto it = cursors_.find(q);
  if (it == cursors_.end() || it->second.alpha != alpha) {
    // Cache miss, or a cursor filtered at a different α (a stale cursor
    // would silently serve neighbors pruned at the old threshold).
    it = cursors_.insert_or_assign(q, BuildCursor(q, alpha)).first;
  }
  Cursor& cursor = it->second;
  if (cursor.next >= cursor.neighbors.size()) return std::nullopt;
  EnsureOrdered(cursor, cursor.next + 1);
  return cursor.neighbors[cursor.next++];
}

std::vector<ExactKnnIndex::Cursor> ExactKnnIndex::BuildCursorBlock(
    std::span<const TokenId> qs, Score alpha) const {
  // One multi-query kernel call scores the whole block against the
  // vocabulary (each target row read once per 4-query sub-block), then the
  // α filter runs per query over the flat score matrix.
  thread_local std::vector<Score> scores;
  scores.resize(qs.size() * vocabulary_.size());
  sim_->SimilarityBatchMulti(qs, vocabulary_, scores);
  std::vector<Cursor> cursors(qs.size());
  for (size_t qi = 0; qi < qs.size(); ++qi) {
    Cursor& cursor = cursors[qi];
    cursor.alpha = alpha;
    const Score* row = scores.data() + qi * vocabulary_.size();
    for (size_t i = 0; i < vocabulary_.size(); ++i) {
      const TokenId t = vocabulary_[i];
      if (t == qs[qi]) continue;  // self-matches come from the token stream
      if (row[i] >= alpha) cursor.neighbors.push_back({t, row[i]});
    }
  }
  return cursors;
}

void ExactKnnIndex::Prewarm(std::span<const TokenId> tokens, Score alpha) {
  std::vector<TokenId> missing;
  missing.reserve(tokens.size());
  for (TokenId t : tokens) {
    auto it = cursors_.find(t);
    if (it == cursors_.end() || it->second.alpha != alpha) missing.push_back(t);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  if (missing.empty()) return;

  const std::span<const TokenId> all(missing);
  if (pool_ != nullptr && missing.size() > kPrewarmBlock) {
    // Fan blocks out across the pool; cursors are independent, so the only
    // serial part is inserting the finished blocks into the map.
    std::vector<std::future<std::vector<Cursor>>> futures;
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block = all.subspan(b, std::min(kPrewarmBlock,
                                                 missing.size() - b));
      futures.push_back(pool_->Submit(
          [this, block, alpha] { return BuildCursorBlock(block, alpha); }));
    }
    size_t b = 0;
    for (auto& f : futures) {
      for (Cursor& c : f.get()) {
        cursors_.insert_or_assign(missing[b++], std::move(c));
      }
    }
  } else {
    for (size_t b = 0; b < missing.size(); b += kPrewarmBlock) {
      const auto block = all.subspan(b, std::min(kPrewarmBlock,
                                                 missing.size() - b));
      std::vector<Cursor> built = BuildCursorBlock(block, alpha);
      for (size_t i = 0; i < block.size(); ++i) {
        cursors_.insert_or_assign(block[i], std::move(built[i]));
      }
    }
  }
}

void ExactKnnIndex::ResetCursors() { cursors_.clear(); }

size_t ExactKnnIndex::MemoryUsageBytes() const {
  size_t bytes = vocabulary_.capacity() * sizeof(TokenId);
  for (const auto& [_, c] : cursors_) {
    bytes += sizeof(Cursor) + c.neighbors.capacity() * sizeof(Neighbor);
  }
  return bytes;
}

}  // namespace koios::sim
