#include "koios/sim/exact_knn_index.h"

#include <utility>

namespace koios::sim {

ExactKnnIndex::ExactKnnIndex(std::vector<TokenId> vocabulary,
                             const SimilarityFunction* sim,
                             util::ThreadPool* pool)
    : BatchedNeighborIndex(sim, pool), vocabulary_(std::move(vocabulary)) {}

size_t ExactKnnIndex::MemoryUsageBytes() const {
  return vocabulary_.capacity() * sizeof(TokenId) +
         BatchedNeighborIndex::MemoryUsageBytes();
}

}  // namespace koios::sim
