#include "koios/sim/exact_knn_index.h"

#include <algorithm>
#include <utility>

namespace koios::sim {

ExactKnnIndex::ExactKnnIndex(std::vector<TokenId> vocabulary,
                             const SimilarityFunction* sim)
    : vocabulary_(std::move(vocabulary)), sim_(sim) {}

ExactKnnIndex::Cursor ExactKnnIndex::BuildCursor(TokenId q, Score alpha) const {
  Cursor cursor;
  for (TokenId t : vocabulary_) {
    if (t == q) continue;  // self-matches are injected by the token stream
    const Score s = sim_->Similarity(q, t);
    if (s >= alpha) cursor.neighbors.push_back({t, s});
  }
  std::sort(cursor.neighbors.begin(), cursor.neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.sim != b.sim) return a.sim > b.sim;
              return a.token < b.token;  // deterministic tie-break
            });
  return cursor;
}

std::optional<Neighbor> ExactKnnIndex::NextNeighbor(TokenId q, Score alpha) {
  auto it = cursors_.find(q);
  if (it == cursors_.end()) {
    it = cursors_.emplace(q, BuildCursor(q, alpha)).first;
  }
  Cursor& cursor = it->second;
  if (cursor.next >= cursor.neighbors.size()) return std::nullopt;
  return cursor.neighbors[cursor.next++];
}

void ExactKnnIndex::ResetCursors() { cursors_.clear(); }

size_t ExactKnnIndex::MemoryUsageBytes() const {
  size_t bytes = vocabulary_.capacity() * sizeof(TokenId);
  for (const auto& [_, c] : cursors_) {
    bytes += sizeof(Cursor) + c.neighbors.capacity() * sizeof(Neighbor);
  }
  return bytes;
}

}  // namespace koios::sim
