// Koios — top-k semantic overlap set search (ICDE 2023 reproduction).
//
// Umbrella header: pulls in the public API.
//
//   using namespace koios;
//   data::Corpus corpus = data::GenerateCorpus(data::OpenDataSpec(0.05));
//   embedding::SyntheticEmbeddingModel model({...});
//   sim::CosineEmbeddingSimilarity sim(&model.store());
//   sim::ExactKnnIndex index(corpus.vocabulary, &sim);
//   core::KoiosSearcher searcher(&corpus.sets, &index);
//   core::SearchParams params;           // k = 10, alpha = 0.8
//   auto result = searcher.Search(query_tokens, params);
//
// See examples/quickstart.cpp for a complete program.
#ifndef KOIOS_KOIOS_H_
#define KOIOS_KOIOS_H_

#include "koios/baselines/brute_force.h"
#include "koios/baselines/silkmoth.h"
#include "koios/baselines/vanilla_topk.h"
#include "koios/core/many_to_one.h"
#include "koios/core/normalized_search.h"
#include "koios/core/search_types.h"
#include "koios/core/searcher.h"
#include "koios/core/threshold_search.h"
#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/embedding/vec_loader.h"
#include "koios/index/inverted_index.h"
#include "koios/io/serialization.h"
#include "koios/index/set_collection.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/serve/latency_recorder.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/sim/lsh_index.h"
#include "koios/sim/minhash_index.h"
#include "koios/sim/token_stream.h"
#include "koios/text/dictionary.h"
#include "koios/text/qgram.h"
#include "koios/text/tokenizer.h"

#endif  // KOIOS_KOIOS_H_
