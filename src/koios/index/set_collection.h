// The repository L: a collection of sets of TokenIds in CSR-like storage.
#ifndef KOIOS_INDEX_SET_COLLECTION_H_
#define KOIOS_INDEX_SET_COLLECTION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "koios/util/types.h"

namespace koios::index {

/// Append-only set storage. Member tokens of each set are stored sorted and
/// deduplicated so that vanilla overlap is a linear merge.
class SetCollection {
 public:
  /// Adds a set (tokens are copied, sorted, deduplicated). Returns its id.
  SetId AddSet(std::span<const TokenId> tokens);

  size_t size() const { return offsets_.size() - 1; }

  size_t SetSize(SetId id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  /// Sorted distinct tokens of set `id`.
  std::span<const TokenId> Tokens(SetId id) const {
    return {tokens_.data() + offsets_[id], SetSize(id)};
  }

  /// |A ∩ tokens(id)| for a *sorted* token vector A.
  size_t VanillaOverlap(std::span<const TokenId> sorted_query, SetId id) const;

  /// Total number of stored token occurrences (Σ |C|, the paper's D+).
  size_t TotalTokens() const { return tokens_.size(); }

  /// Largest token id stored + 1 (the dense vocabulary bound).
  size_t TokenIdBound() const { return token_id_bound_; }

  /// Statistics for Table I style reporting.
  size_t MaxSetSize() const;
  double AvgSetSize() const;
  /// Number of distinct tokens across all sets.
  size_t DistinctTokens() const;

  size_t MemoryUsageBytes() const {
    return tokens_.capacity() * sizeof(TokenId) + offsets_.capacity() * sizeof(size_t);
  }

 private:
  std::vector<TokenId> tokens_;
  std::vector<size_t> offsets_ = {0};
  size_t token_id_bound_ = 0;
};

}  // namespace koios::index

#endif  // KOIOS_INDEX_SET_COLLECTION_H_
