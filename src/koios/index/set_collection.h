// The repository L: a collection of sets of TokenIds in CSR-like storage.
//
// Two storage modes behind one interface (the borrowed/owned contract the
// v4 mmap repository format relies on, see docs/ARCHITECTURE.md):
//  * owned (default) — AddSet() appends into heap vectors.
//  * borrowed — FromBorrowed() wraps external CSR arenas (typically inside
//    an io::MmapRepositoryView mapping) without copying the postings.
//    Borrowed collections are immutable (AddSet asserts); the arenas must
//    outlive the collection — serve::Snapshot pins the mapping.
#ifndef KOIOS_INDEX_SET_COLLECTION_H_
#define KOIOS_INDEX_SET_COLLECTION_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "koios/util/status.h"
#include "koios/util/types.h"

namespace koios::index {

/// Append-only set storage. Member tokens of each set are stored sorted and
/// deduplicated so that vanilla overlap is a linear merge.
class SetCollection {
 public:
  SetCollection() = default;

  /// Wraps external CSR arenas without copying: `offsets` holds size()+1
  /// monotone positions (in token elements) into `tokens`, ending exactly
  /// at tokens.size(). `token_id_bound` is the dense vocabulary bound the
  /// stored ids fall under (the v4 header records it; the repository
  /// loader cross-checks it against the dictionary). Per-set ordering /
  /// dedup invariants are trusted from the writer (checksummed in the
  /// file); eager verification lives in MmapRepositoryView::VerifySections.
  static util::StatusOr<SetCollection> FromBorrowed(
      std::span<const uint64_t> offsets, std::span<const TokenId> tokens,
      size_t token_id_bound);

  /// Adds a set (tokens are copied, sorted, deduplicated). Returns its id.
  /// Owned mode only: borrowed collections are immutable.
  SetId AddSet(std::span<const TokenId> tokens);

  size_t size() const { return NumOffsets() - 1; }

  size_t SetSize(SetId id) const {
    const uint64_t* o = OffsetsPtr();
    return static_cast<size_t>(o[id + 1] - o[id]);
  }

  /// Sorted distinct tokens of set `id`.
  std::span<const TokenId> Tokens(SetId id) const {
    return {TokensPtr() + OffsetsPtr()[id], SetSize(id)};
  }

  /// |A ∩ tokens(id)| for a *sorted* token vector A.
  size_t VanillaOverlap(std::span<const TokenId> sorted_query, SetId id) const;

  /// Total number of stored token occurrences (Σ |C|, the paper's D+).
  size_t TotalTokens() const {
    return static_cast<size_t>(OffsetsPtr()[size()]);
  }

  /// Largest token id stored + 1 (the dense vocabulary bound).
  size_t TokenIdBound() const { return token_id_bound_; }

  /// True when the CSR storage is a borrowed arena (immutable mode).
  bool borrowed() const { return borrowed_; }

  /// The raw CSR arenas (offsets in token elements; size()+1 entries).
  /// Exposed for the repository writers.
  std::span<const uint64_t> RawOffsets() const {
    return {OffsetsPtr(), NumOffsets()};
  }
  std::span<const TokenId> RawTokens() const {
    return {TokensPtr(), TotalTokens()};
  }

  /// Statistics for Table I style reporting.
  size_t MaxSetSize() const;
  double AvgSetSize() const;
  /// Number of distinct tokens across all sets.
  size_t DistinctTokens() const;

  size_t MemoryUsageBytes() const {
    return tokens_own_.capacity() * sizeof(TokenId) +
           offsets_own_.capacity() * sizeof(uint64_t);
  }

 private:
  const uint64_t* OffsetsPtr() const {
    return borrowed_ ? b_offsets_.data() : offsets_own_.data();
  }
  const TokenId* TokensPtr() const {
    return borrowed_ ? b_tokens_.data() : tokens_own_.data();
  }
  size_t NumOffsets() const {
    return borrowed_ ? b_offsets_.size() : offsets_own_.size();
  }

  // Owned mode.
  std::vector<TokenId> tokens_own_;
  std::vector<uint64_t> offsets_own_ = {0};
  // Borrowed mode: views into external arenas.
  std::span<const uint64_t> b_offsets_;
  std::span<const TokenId> b_tokens_;
  bool borrowed_ = false;
  size_t token_id_bound_ = 0;
};

}  // namespace koios::index

#endif  // KOIOS_INDEX_SET_COLLECTION_H_
