// The inverted index Is (paper §IV): maps each vocabulary token cj ∈ D to
// the posting list of sets containing it.
#ifndef KOIOS_INDEX_INVERTED_INDEX_H_
#define KOIOS_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "koios/index/set_collection.h"
#include "koios/util/types.h"

namespace koios::index {

class InvertedIndex {
 public:
  /// Builds postings for every set in `collection` (dense by token id).
  explicit InvertedIndex(const SetCollection& collection);

  /// Builds postings for a *subset* of the collection — used by
  /// partitioned search, where each partition indexes only its own sets.
  InvertedIndex(const SetCollection& collection, std::span<const SetId> subset);

  /// Sets containing `token` (ascending SetId); empty if none.
  std::span<const SetId> Postings(TokenId token) const {
    if (token >= heads_.size() || heads_[token] == kEmpty) return {};
    const auto& range = ranges_[heads_[token]];
    return {postings_.data() + range.first, range.second};
  }

  /// True if the token occurs in at least one indexed set (token ∈ D).
  bool InVocabulary(TokenId token) const {
    return token < heads_.size() && heads_[token] != kEmpty;
  }

  /// The distinct tokens of the indexed sets.
  std::vector<TokenId> Vocabulary() const;

  size_t NumTokens() const { return ranges_.size(); }
  size_t MaxPostingLength() const;

  size_t MemoryUsageBytes() const {
    return postings_.capacity() * sizeof(SetId) + heads_.capacity() * sizeof(uint32_t) +
           ranges_.capacity() * sizeof(std::pair<size_t, size_t>);
  }

 private:
  void Build(const SetCollection& collection, std::span<const SetId> subset);

  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  std::vector<SetId> postings_;                      // concatenated lists
  std::vector<std::pair<size_t, size_t>> ranges_;    // (begin, count) per token
  std::vector<uint32_t> heads_;                      // TokenId -> ranges_ slot
};

}  // namespace koios::index

#endif  // KOIOS_INDEX_INVERTED_INDEX_H_
