#include "koios/index/inverted_index.h"

#include <algorithm>
#include <numeric>

namespace koios::index {

InvertedIndex::InvertedIndex(const SetCollection& collection) {
  std::vector<SetId> all(collection.size());
  std::iota(all.begin(), all.end(), 0);
  Build(collection, all);
}

InvertedIndex::InvertedIndex(const SetCollection& collection,
                             std::span<const SetId> subset) {
  Build(collection, subset);
}

void InvertedIndex::Build(const SetCollection& collection,
                          std::span<const SetId> subset) {
  const size_t bound = collection.TokenIdBound();
  heads_.assign(bound, kEmpty);

  // Two passes: count posting lengths, then fill.
  std::vector<size_t> counts(bound, 0);
  size_t total = 0;
  for (SetId id : subset) {
    for (TokenId t : collection.Tokens(id)) {
      ++counts[t];
      ++total;
    }
  }
  postings_.resize(total);
  ranges_.clear();
  std::vector<size_t> cursor(bound, 0);
  size_t offset = 0;
  for (TokenId t = 0; t < bound; ++t) {
    if (counts[t] == 0) continue;
    heads_[t] = static_cast<uint32_t>(ranges_.size());
    ranges_.emplace_back(offset, counts[t]);
    cursor[t] = offset;
    offset += counts[t];
  }
  for (SetId id : subset) {
    for (TokenId t : collection.Tokens(id)) {
      postings_[cursor[t]++] = id;
    }
  }
}

std::vector<TokenId> InvertedIndex::Vocabulary() const {
  std::vector<TokenId> vocab;
  vocab.reserve(ranges_.size());
  for (TokenId t = 0; t < heads_.size(); ++t) {
    if (heads_[t] != kEmpty) vocab.push_back(t);
  }
  return vocab;
}

size_t InvertedIndex::MaxPostingLength() const {
  size_t max_len = 0;
  for (const auto& [_, count] : ranges_) max_len = std::max(max_len, count);
  return max_len;
}

}  // namespace koios::index
