#include "koios/index/set_collection.h"

#include <algorithm>
#include <unordered_set>

namespace koios::index {

SetId SetCollection::AddSet(std::span<const TokenId> tokens) {
  const SetId id = static_cast<SetId>(size());
  tokens_.insert(tokens_.end(), tokens.begin(), tokens.end());
  auto begin = tokens_.begin() + static_cast<ptrdiff_t>(offsets_.back());
  std::sort(begin, tokens_.end());
  tokens_.erase(std::unique(begin, tokens_.end()), tokens_.end());
  offsets_.push_back(tokens_.size());
  if (offsets_[id + 1] > offsets_[id]) {
    token_id_bound_ = std::max<size_t>(token_id_bound_, tokens_.back() + 1);
  }
  return id;
}

size_t SetCollection::VanillaOverlap(std::span<const TokenId> sorted_query,
                                     SetId id) const {
  const auto set_tokens = Tokens(id);
  size_t i = 0, j = 0, overlap = 0;
  while (i < sorted_query.size() && j < set_tokens.size()) {
    if (sorted_query[i] == set_tokens[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (sorted_query[i] < set_tokens[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

size_t SetCollection::MaxSetSize() const {
  size_t max_size = 0;
  for (SetId id = 0; id < size(); ++id) max_size = std::max(max_size, SetSize(id));
  return max_size;
}

double SetCollection::AvgSetSize() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(tokens_.size()) / static_cast<double>(size());
}

size_t SetCollection::DistinctTokens() const {
  std::unordered_set<TokenId> distinct(tokens_.begin(), tokens_.end());
  return distinct.size();
}

}  // namespace koios::index
