#include "koios/index/set_collection.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace koios::index {

util::StatusOr<SetCollection> SetCollection::FromBorrowed(
    std::span<const uint64_t> offsets, std::span<const TokenId> tokens,
    size_t token_id_bound) {
  if (offsets.empty()) {
    return util::Status::InvalidArgument("set offset table is empty");
  }
  if (offsets.front() != 0 || offsets.back() != tokens.size()) {
    return util::Status::InvalidArgument(
        "set offsets do not span the token arena");
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return util::Status::InvalidArgument("set offsets are not monotone");
    }
  }
  SetCollection sets;
  sets.borrowed_ = true;
  sets.b_offsets_ = offsets;
  sets.b_tokens_ = tokens;
  sets.token_id_bound_ = token_id_bound;
  return sets;
}

SetId SetCollection::AddSet(std::span<const TokenId> tokens) {
  assert(!borrowed_ && "AddSet on a borrowed (immutable) set collection");
  const SetId id = static_cast<SetId>(size());
  tokens_own_.insert(tokens_own_.end(), tokens.begin(), tokens.end());
  auto begin = tokens_own_.begin() + static_cast<ptrdiff_t>(offsets_own_.back());
  std::sort(begin, tokens_own_.end());
  tokens_own_.erase(std::unique(begin, tokens_own_.end()), tokens_own_.end());
  offsets_own_.push_back(tokens_own_.size());
  if (offsets_own_[id + 1] > offsets_own_[id]) {
    token_id_bound_ = std::max<size_t>(token_id_bound_, tokens_own_.back() + 1);
  }
  return id;
}

size_t SetCollection::VanillaOverlap(std::span<const TokenId> sorted_query,
                                     SetId id) const {
  const auto set_tokens = Tokens(id);
  size_t i = 0, j = 0, overlap = 0;
  while (i < sorted_query.size() && j < set_tokens.size()) {
    if (sorted_query[i] == set_tokens[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (sorted_query[i] < set_tokens[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

size_t SetCollection::MaxSetSize() const {
  size_t max_size = 0;
  for (SetId id = 0; id < size(); ++id) max_size = std::max(max_size, SetSize(id));
  return max_size;
}

double SetCollection::AvgSetSize() const {
  if (size() == 0) return 0.0;
  return static_cast<double>(TotalTokens()) / static_cast<double>(size());
}

size_t SetCollection::DistinctTokens() const {
  const TokenId* tokens = TokensPtr();
  std::unordered_set<TokenId> distinct(tokens, tokens + TotalTokens());
  return distinct.size();
}

}  // namespace koios::index
