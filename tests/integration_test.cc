// End-to-end integration tests exercising complete user journeys across
// module boundaries: raw text -> tokenizer -> dictionary -> sets -> index
// -> search; search-engine interchangeability across measures; failure
// injection on the persistence layer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "koios/koios.h"
#include "test_util.h"

namespace koios {
namespace {

TEST(IntegrationTest, TextToSearchPipeline) {
  // Records -> tokenizer -> sets -> q-gram similarity -> Koios.
  const char* records[] = {
      "alpha beta gamma delta",
      "alpha beta gamma deltaa",   // typo variant of record 0
      "epsilon zeta eta theta",
      "iota kappa lambda mu nu",
      "alpha epsilon iota omega",  // mixes tokens from several records
  };
  text::Dictionary dict;
  index::SetCollection sets;
  for (const char* record : records) {
    std::vector<TokenId> ids;
    for (const auto& token : text::TokenizeToSet(record)) {
      ids.push_back(dict.Intern(token));
    }
    sets.AddSet(ids);
  }
  sim::JaccardQGramSimilarity similarity(&dict, 3);
  index::InvertedIndex inverted(sets);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &similarity);
  core::KoiosSearcher searcher(&sets, &knn);

  std::vector<TokenId> query;
  for (const auto& token : text::TokenizeToSet("alpha beta gamma delta")) {
    query.push_back(dict.Intern(token));
  }
  core::SearchParams params;
  params.k = 2;
  params.alpha = 0.4;
  const auto result = searcher.Search(query, params);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].set, 0u);  // exact copy
  EXPECT_NEAR(result.topk[0].score, 4.0, 1e-9);
  EXPECT_EQ(result.topk[1].set, 1u);  // typo variant: 3 exact + 1 fuzzy
  EXPECT_GT(result.topk[1].score, 3.0);
  EXPECT_LT(result.topk[1].score, 4.0);
}

TEST(IntegrationTest, AllMeasuresRankSelfFirst) {
  auto w = testing::MakeRandomWorkload(80, 400, 6, 18, 10001);
  const SetId target = 15;
  std::vector<TokenId> q(w.corpus.sets.Tokens(target).begin(),
                         w.corpus.sets.Tokens(target).end());
  core::SearchParams params;
  params.k = 1;
  params.alpha = 0.8;

  core::KoiosSearcher absolute(&w.corpus.sets, w.index.get());
  EXPECT_EQ(absolute.Search(q, params).topk[0].set, target);

  core::ManyToOneSearcher many(&w.corpus.sets, w.index.get());
  EXPECT_EQ(many.Search(q, params).topk[0].set, target);

  core::NormalizedSearcher normalized(&w.corpus.sets, w.index.get());
  EXPECT_EQ(normalized.Search(q, params).topk[0].set, target);

  core::ThresholdSearcher threshold(&w.corpus.sets, w.index.get());
  core::ThresholdParams tp;
  tp.theta = static_cast<Score>(q.size());
  tp.alpha = params.alpha;
  const auto tr = threshold.Search(q, tp);
  ASSERT_FALSE(tr.empty());
  EXPECT_EQ(tr[0].set, target);
}

TEST(IntegrationTest, MeasureDominanceChain) {
  // For every candidate: vanilla <= SO <= many-to-one and SO <= cap.
  auto w = testing::MakeRandomWorkload(50, 250, 5, 15, 10002);
  std::vector<TokenId> q(w.corpus.sets.Tokens(4).begin(),
                         w.corpus.sets.Tokens(4).end());
  std::vector<TokenId> sorted_q = q;
  std::sort(sorted_q.begin(), sorted_q.end());
  for (SetId id = 0; id < w.corpus.sets.size(); ++id) {
    const auto tokens = w.corpus.sets.Tokens(id);
    const double vanilla =
        static_cast<double>(w.corpus.sets.VanillaOverlap(sorted_q, id));
    const double so = matching::SemanticOverlap(q, tokens, *w.sim, 0.8);
    const double many = core::ManyToOneOverlap(q, tokens, *w.sim, 0.8);
    EXPECT_LE(vanilla, so + 1e-9) << id;
    EXPECT_LE(so, many + 1e-9) << id;
    EXPECT_LE(so, static_cast<double>(std::min(q.size(), tokens.size())) + 1e-9);
  }
}

TEST(IntegrationTest, VecStreamToSearch) {
  // .vec text -> embedding store -> search over a hand-made repository.
  text::Dictionary dict;
  index::SetCollection sets;
  auto add = [&](std::initializer_list<const char*> words) {
    std::vector<TokenId> ids;
    for (const char* word : words) ids.push_back(dict.Intern(word));
    sets.AddSet(ids);
  };
  add({"car", "truck", "bus"});
  add({"automobile", "lorry", "coach"});
  add({"apple", "pear", "plum"});

  // Synthetic 4-d vectors: transport words cluster; fruit is orthogonal.
  std::istringstream vec(
      "7 4\n"
      "car 1 0.1 0 0\n"
      "automobile 1 0.12 0 0\n"
      "truck 0.9 0.3 0 0\n"
      "lorry 0.9 0.32 0 0\n"
      "bus 0.8 0.4 0 0\n"
      "coach 0.8 0.42 0 0\n"
      "apple 0 0 1 0\n");
  auto store = embedding::LoadVecStream(vec, dict);
  ASSERT_TRUE(store.ok());
  sim::CosineEmbeddingSimilarity similarity(&store.value());
  index::InvertedIndex inverted(sets);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &similarity);
  core::KoiosSearcher searcher(&sets, &knn);

  std::vector<TokenId> query = {dict.Lookup("car"), dict.Lookup("truck"),
                                dict.Lookup("bus")};
  core::SearchParams params;
  params.k = 2;
  params.alpha = 0.9;
  const auto result = searcher.Search(query, params);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].set, 0u);  // itself
  EXPECT_EQ(result.topk[1].set, 1u);  // the synonym column beats the fruit
  EXPECT_GT(result.topk[1].score, 2.5);
}

TEST(IntegrationTest, CorruptRepositoryFileFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/corrupt_repo.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a koios repository file at all";
  }
  auto repo = io::LoadRepository(path);
  EXPECT_FALSE(repo.ok());
  EXPECT_EQ(repo.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IntegrationTest, LargeRandomWorkloadSmoke) {
  // A bigger end-to-end pass guarding against scaling bugs (hash
  // collisions, id overflow, accidental quadratic loops).
  auto w = testing::MakeRandomWorkload(600, 2000, 5, 40, 10003);
  core::SearcherOptions options;
  options.num_partitions = 4;
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  core::SearchParams params;
  params.k = 20;
  params.alpha = 0.8;
  std::vector<TokenId> q(w.corpus.sets.Tokens(100).begin(),
                         w.corpus.sets.Tokens(100).end());
  const auto result = searcher.Search(q, params);
  ASSERT_FALSE(result.topk.empty());
  const auto oracle =
      testing::OracleRanking(w.corpus.sets, q, *w.sim, params.alpha);
  EXPECT_NEAR(result.KthScore(),
              testing::OracleKthScore(oracle, params.k), 1e-6);
}

}  // namespace
}  // namespace koios
