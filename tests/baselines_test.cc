#include <gtest/gtest.h>

#include <vector>

#include "koios/baselines/brute_force.h"
#include "koios/baselines/vanilla_topk.h"
#include "koios/core/searcher.h"
#include "test_util.h"

namespace koios::baselines {
namespace {

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

// ------------------------------------------------------ BruteForceBaseline --

TEST(BruteForceBaselineTest, MatchesOracle) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 901);
  BruteForceBaseline baseline(&w.corpus.sets, w.index.get());
  const auto query = QueryOf(w, 6);
  BaselineOptions options;
  options.k = 10;
  options.alpha = 0.8;
  const auto result = baseline.Search(query, options);
  const auto oracle =
      testing::OracleRanking(w.corpus.sets, query, *w.sim, options.alpha);
  ASSERT_EQ(result.topk.size(), std::min<size_t>(10, oracle.size()));
  EXPECT_NEAR(result.KthScore(), testing::OracleKthScore(oracle, 10), 1e-6);
}

TEST(BruteForceBaselineTest, BaselinePlusAgreesWithBaseline) {
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 902);
  BruteForceBaseline baseline(&w.corpus.sets, w.index.get());
  const auto query = QueryOf(w, 10);
  BaselineOptions plain, plus;
  plain.k = plus.k = 8;
  plain.alpha = plus.alpha = 0.8;
  plus.use_iub_filter = true;
  const auto r1 = baseline.Search(query, plain);
  const auto r2 = baseline.Search(query, plus);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  EXPECT_NEAR(r1.KthScore(), r2.KthScore(), 1e-6);
  // Baseline+ must verify no more sets than the plain baseline.
  EXPECT_LE(r2.stats.em_computed, r1.stats.em_computed);
}

TEST(BruteForceBaselineTest, AgreesWithKoios) {
  auto w = testing::MakeRandomWorkload(110, 450, 5, 20, 903);
  BruteForceBaseline baseline(&w.corpus.sets, w.index.get());
  core::KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  const auto query = QueryOf(w, 19);
  BaselineOptions options;
  options.k = 10;
  options.alpha = 0.8;
  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  const auto rb = baseline.Search(query, options);
  const auto rk = searcher.Search(query, params);
  ASSERT_EQ(rb.topk.size(), rk.topk.size());
  for (size_t i = 0; i < rb.topk.size(); ++i) {
    EXPECT_NEAR(rb.topk[i].score, rk.topk[i].score, 1e-6);
  }
  // Koios verifies a strict subset of the baseline's candidates.
  EXPECT_LE(rk.stats.em_computed, rb.stats.em_computed);
}

TEST(BruteForceBaselineTest, ParallelVerificationMatches) {
  auto w = testing::MakeRandomWorkload(90, 400, 5, 18, 904);
  BruteForceBaseline baseline(&w.corpus.sets, w.index.get());
  const auto query = QueryOf(w, 7);
  BaselineOptions seq, par;
  seq.k = par.k = 5;
  seq.alpha = par.alpha = 0.8;
  par.num_threads = 4;
  const auto r1 = baseline.Search(query, seq);
  const auto r2 = baseline.Search(query, par);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_EQ(r1.topk[i].set, r2.topk[i].set);
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-9);
  }
}

// ------------------------------------------------------------ VanillaTopK --

TEST(VanillaTopKTest, CountsExactMatches) {
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2, 3});
  sets.AddSet(std::vector<TokenId>{2, 3, 4, 5});
  sets.AddSet(std::vector<TokenId>{9});
  VanillaTopK vanilla(&sets);
  const std::vector<TokenId> query = {2, 3, 5};
  const auto result = vanilla.Search(query, 2);
  ASSERT_EQ(result.topk.size(), 2u);
  EXPECT_EQ(result.topk[0].set, 1u);
  EXPECT_DOUBLE_EQ(result.topk[0].score, 3.0);
  EXPECT_EQ(result.topk[1].set, 0u);
  EXPECT_DOUBLE_EQ(result.topk[1].score, 2.0);
}

TEST(VanillaTopKTest, ZeroOverlapExcluded) {
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1});
  sets.AddSet(std::vector<TokenId>{2});
  VanillaTopK vanilla(&sets);
  const auto result = vanilla.Search(std::vector<TokenId>{1}, 10);
  EXPECT_EQ(result.topk.size(), 1u);
}

TEST(VanillaTopKTest, MatchesSetCollectionOverlap) {
  auto w = testing::MakeRandomWorkload(80, 300, 5, 15, 905);
  VanillaTopK vanilla(&w.corpus.sets);
  auto query = QueryOf(w, 12);
  std::sort(query.begin(), query.end());
  const auto result = vanilla.Search(query, 10);
  for (const auto& entry : result.topk) {
    EXPECT_DOUBLE_EQ(
        entry.score,
        static_cast<double>(w.corpus.sets.VanillaOverlap(query, entry.set)));
  }
}

TEST(VanillaTopKTest, VanillaIsLowerBoundOfSemantic) {
  // Lemma 1 at search level: the semantic score of any set is at least its
  // vanilla overlap.
  auto w = testing::MakeRandomWorkload(80, 300, 5, 15, 906);
  VanillaTopK vanilla(&w.corpus.sets);
  auto query = QueryOf(w, 3);
  std::sort(query.begin(), query.end());
  const auto result = vanilla.Search(query, 5);
  for (const auto& entry : result.topk) {
    const Score so = matching::SemanticOverlap(
        query, w.corpus.sets.Tokens(entry.set), *w.sim, 0.8);
    EXPECT_GE(so + 1e-9, entry.score);
  }
}

}  // namespace
}  // namespace koios::baselines
