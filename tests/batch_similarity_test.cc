// Tests for the batched neighbor-generation path (ISSUE 1): kernel parity
// between the batched/multi-query cosine paths and the pairwise reference,
// lazy chunked cursor ordering, the α-keyed cursor cache, and parallel
// prewarm.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "koios/data/string_corpus.h"
#include "koios/embedding/embedding_store.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/sim/similarity.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"
#include "test_util.h"

namespace koios::sim {
namespace {

embedding::SyntheticModelSpec SmallSpec() {
  embedding::SyntheticModelSpec spec;
  spec.vocab_size = 400;
  spec.dim = 48;
  spec.avg_cluster_size = 10.0;
  spec.noise_sigma = 0.4;
  spec.coverage = 0.85;  // leave OOV tokens so the kNoRow paths run
  spec.seed = 99;
  return spec;
}

std::vector<TokenId> FullVocabulary(size_t n) {
  std::vector<TokenId> vocab(n);
  for (TokenId t = 0; t < n; ++t) vocab[t] = t;
  return vocab;
}

// ------------------------------------------------------------ kernel parity --

TEST(BatchCosineTest, CosineBatchMatchesPairwiseCosine) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  const auto& store = model.store();
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  std::vector<double> batch(vocab.size());
  std::vector<float> batch_f(vocab.size());
  for (TokenId q : {TokenId{0}, TokenId{17}, TokenId{399}}) {
    store.CosineBatch(q, vocab, std::span<double>(batch));
    store.CosineBatch(q, vocab, std::span<float>(batch_f));
    for (size_t i = 0; i < vocab.size(); ++i) {
      const double reference = store.Cosine(q, vocab[i]);
      EXPECT_NEAR(batch[i], reference, 1e-12) << "q=" << q << " t=" << vocab[i];
      EXPECT_NEAR(batch_f[i], reference, 1e-6) << "q=" << q << " t=" << vocab[i];
    }
  }
}

TEST(BatchCosineTest, CosineBatchZeroForOovQuery) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  const auto& store = model.store();
  // Find an OOV token (coverage < 1 guarantees one exists).
  TokenId oov = kInvalidToken;
  for (TokenId t = 0; t < model.spec().vocab_size; ++t) {
    if (!store.Has(t)) {
      oov = t;
      break;
    }
  }
  ASSERT_NE(oov, kInvalidToken);
  const auto vocab = FullVocabulary(model.spec().vocab_size);
  std::vector<double> batch(vocab.size(), 123.0);
  store.CosineBatch(oov, vocab, std::span<double>(batch));
  for (double s : batch) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(BatchCosineTest, CosineAllRowsMatchesPairwise) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  const auto& store = model.store();
  std::vector<double> dense(store.covered());
  TokenId q = kInvalidToken;
  for (TokenId t = 0; t < model.spec().vocab_size; ++t) {
    if (store.Has(t)) {
      q = t;
      break;
    }
  }
  ASSERT_NE(q, kInvalidToken);
  store.CosineAllRows(q, std::span<double>(dense));
  for (TokenId t = 0; t < model.spec().vocab_size; ++t) {
    const uint32_t row = store.RowIndexOf(t);
    if (row == embedding::EmbeddingStore::kNoRow) continue;
    EXPECT_NEAR(dense[row], store.Cosine(q, t), 1e-12);
  }
}

TEST(BatchSimilarityTest, SimilarityBatchMatchesPairwiseAcrossRandomVocab) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  CosineEmbeddingSimilarity sim(&model.store());
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  util::Rng rng(5);
  std::vector<double> batch(vocab.size());
  for (int rep = 0; rep < 8; ++rep) {
    const TokenId q =
        static_cast<TokenId>(rng.NextBounded(model.spec().vocab_size));
    sim.SimilarityBatch(q, vocab, std::span<double>(batch));
    for (size_t i = 0; i < vocab.size(); ++i) {
      EXPECT_NEAR(batch[i], sim.Similarity(q, vocab[i]), 1e-6)
          << "q=" << q << " t=" << vocab[i];
    }
  }
}

TEST(BatchSimilarityTest, SimilarityBatchMultiMatchesPerQueryRows) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  CosineEmbeddingSimilarity sim(&model.store());
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  // 7 queries: exercises one full 4-block plus a 3-remainder in the multi
  // kernel, plus an OOV query row.
  std::vector<TokenId> queries = {0, 1, 17, 42, 101, 254, 399};
  std::vector<double> multi(queries.size() * vocab.size());
  sim.SimilarityBatchMulti(queries, vocab, std::span<double>(multi));
  std::vector<double> row(vocab.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    sim.SimilarityBatch(queries[qi], vocab, std::span<double>(row));
    for (size_t i = 0; i < vocab.size(); ++i) {
      // Both paths share the same accumulation shape: bit-identical.
      EXPECT_DOUBLE_EQ(multi[qi * vocab.size() + i], row[i])
          << "q=" << queries[qi] << " t=" << vocab[i];
    }
  }
}

TEST(BatchSimilarityTest, JaccardBatchMultiMatchesPairwise) {
  // The gram-id inverted-list multi kernel must divide the same integer
  // counts as the pairwise merge: exactly equal, not approximately.
  data::StringCorpusSpec spec;
  spec.num_sets = 40;
  spec.num_base_words = 150;
  spec.typos_per_word = 2;
  spec.seed = 77;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  JaccardQGramSimilarity jaccard(&corpus.dict, 3);

  std::vector<TokenId> queries, targets;
  for (size_t i = 0; i < corpus.vocabulary.size(); i += 11) {
    queries.push_back(corpus.vocabulary[i]);
  }
  for (size_t i = 0; i < corpus.vocabulary.size(); i += 3) {
    targets.push_back(corpus.vocabulary[i]);
  }
  ASSERT_FALSE(queries.empty());
  ASSERT_FALSE(targets.empty());
  std::vector<double> multi(queries.size() * targets.size());
  jaccard.SimilarityBatchMulti(queries, targets, std::span<double>(multi));
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      EXPECT_DOUBLE_EQ(multi[qi * targets.size() + ti],
                       jaccard.Similarity(queries[qi], targets[ti]))
          << "q=" << queries[qi] << " t=" << targets[ti];
    }
  }
}

TEST(BatchSimilarityTest, DefaultFallbackMatchesPairwise) {
  // A similarity WITHOUT a batch override must keep working through the
  // default pairwise fallbacks.
  testing::TableSimilarity table;
  table.Set(1, 2, 0.8);
  table.Set(1, 3, 0.5);
  const std::vector<TokenId> targets = {1, 2, 3, 4};
  std::vector<double> batch(targets.size());
  table.SimilarityBatch(1, targets, std::span<double>(batch));
  EXPECT_DOUBLE_EQ(batch[0], 1.0);
  EXPECT_DOUBLE_EQ(batch[1], 0.8);
  EXPECT_DOUBLE_EQ(batch[2], 0.5);
  EXPECT_DOUBLE_EQ(batch[3], 0.0);

  std::vector<double> multi(2 * targets.size());
  const std::vector<TokenId> queries = {1, 4};
  table.SimilarityBatchMulti(queries, targets, std::span<double>(multi));
  EXPECT_DOUBLE_EQ(multi[0], 1.0);
  EXPECT_DOUBLE_EQ(multi[1], 0.8);
  EXPECT_DOUBLE_EQ(multi[7], 1.0);  // (q=4, t=4)
}

// ------------------------------------------------------- lazy cursor order --

TEST(LazyCursorTest, FullConsumptionEqualsEagerFullSort) {
  // Parameters chosen so some query has well over kSortChunk (64) neighbors
  // above α — the lazy path must cross several chunk boundaries.
  embedding::SyntheticModelSpec spec;
  spec.vocab_size = 1200;
  spec.dim = 16;  // low dimension => heavier cross-cluster similarity mass
  spec.avg_cluster_size = 80.0;
  spec.noise_sigma = 0.5;
  spec.coverage = 1.0;
  spec.seed = 1234;
  embedding::SyntheticEmbeddingModel model(spec);
  CosineEmbeddingSimilarity sim(&model.store());
  const auto vocab = FullVocabulary(spec.vocab_size);
  const Score alpha = 0.2;

  ExactKnnIndex index(vocab, &sim);
  size_t max_neighbors = 0;
  for (TokenId q : {TokenId{5}, TokenId{200}, TokenId{777}}) {
    // Eager reference: α-filter with the pairwise path, full sort with the
    // index's comparator (sim desc, token asc).
    std::vector<Neighbor> reference;
    for (TokenId t : vocab) {
      if (t == q) continue;
      const Score s = sim.Similarity(q, t);
      if (s >= alpha) reference.push_back({t, s});
    }
    std::sort(reference.begin(), reference.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.token < b.token;
              });
    max_neighbors = std::max(max_neighbors, reference.size());

    std::vector<Neighbor> consumed;
    while (auto n = index.NextNeighbor(q, alpha)) consumed.push_back(*n);

    ASSERT_EQ(consumed.size(), reference.size()) << "q=" << q;
    for (size_t i = 0; i < consumed.size(); ++i) {
      EXPECT_EQ(consumed[i].token, reference[i].token)
          << "q=" << q << " position " << i;
      EXPECT_NEAR(consumed[i].sim, reference[i].sim, 1e-12);
      if (i > 0) {
        // Non-increasing with the deterministic tie-break.
        EXPECT_TRUE(consumed[i - 1].sim > consumed[i].sim ||
                    (consumed[i - 1].sim == consumed[i].sim &&
                     consumed[i - 1].token < consumed[i].token));
      }
    }
  }
  // The laziness must actually have been exercised across chunks.
  EXPECT_GT(max_neighbors, 128u);
}

// ----------------------------------------------------------- stale-α cache --

TEST(ExactKnnIndexTest, CursorRebuiltWhenAlphaChanges) {
  testing::TableSimilarity sim;
  sim.Set(1, 2, 0.9);
  sim.Set(1, 3, 0.5);
  sim.Set(1, 4, 0.3);
  ExactKnnIndex index({1, 2, 3, 4}, &sim);

  // First query at a high threshold: only token 2 qualifies.
  auto n = index.NextNeighbor(1, 0.8);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->token, 2u);
  EXPECT_FALSE(index.NextNeighbor(1, 0.8).has_value());

  // Second query at a lower threshold WITHOUT ResetCursors: a stale cursor
  // would keep serving the α=0.8 filtering (and claim exhaustion); the
  // rebuilt cursor must yield all three neighbors from the top.
  n = index.NextNeighbor(1, 0.25);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->token, 2u);
  n = index.NextNeighbor(1, 0.25);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->token, 3u);
  n = index.NextNeighbor(1, 0.25);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->token, 4u);
  EXPECT_FALSE(index.NextNeighbor(1, 0.25).has_value());
}

// ---------------------------------------------------------------- prewarm --

TEST(ExactKnnIndexTest, ParallelPrewarmMatchesSerialProbing) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  CosineEmbeddingSimilarity sim(&model.store());
  const auto vocab = FullVocabulary(model.spec().vocab_size);
  const Score alpha = 0.4;

  std::vector<TokenId> queries;
  util::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    queries.push_back(
        static_cast<TokenId>(rng.NextBounded(model.spec().vocab_size)));
  }

  util::ThreadPool pool(4);
  ExactKnnIndex warmed(vocab, &sim, &pool);
  warmed.Prewarm(queries, alpha);
  ExactKnnIndex cold(vocab, &sim);

  for (TokenId q : queries) {
    while (true) {
      const auto a = warmed.NextNeighbor(q, alpha);
      const auto b = cold.NextNeighbor(q, alpha);
      ASSERT_EQ(a.has_value(), b.has_value()) << "q=" << q;
      if (!a.has_value()) break;
      EXPECT_EQ(a->token, b->token) << "q=" << q;
      EXPECT_DOUBLE_EQ(a->sim, b->sim) << "q=" << q;
    }
  }
}

TEST(ExactKnnIndexTest, PrewarmedCursorsSurviveResetCursors) {
  embedding::SyntheticEmbeddingModel model(SmallSpec());
  CosineEmbeddingSimilarity sim(&model.store());
  const auto vocab = FullVocabulary(model.spec().vocab_size);
  ExactKnnIndex index(vocab, &sim);
  index.Prewarm(std::vector<TokenId>{1, 2, 3}, 0.5);
  index.ResetCursors();
  // After a reset the index must rebuild transparently.
  (void)index.NextNeighbor(1, 0.5);
  EXPECT_GT(index.MemoryUsageBytes(), 0u);
}

// --------------------------------------------------- EmbeddingStore growth --

TEST(EmbeddingStoreTest, AddGrowsGeometrically) {
  embedding::EmbeddingStore store(8);
  std::vector<float> v(8, 1.0f);
  size_t reallocations = 0;
  size_t last_capacity = 0;
  for (TokenId t = 0; t < 512; ++t) {
    store.Add(t, v);
    const size_t cap = store.MemoryUsageBytes();
    if (cap != last_capacity) {
      ++reallocations;
      last_capacity = cap;
    }
  }
  // Exact-size reserves would reallocate on every insertion (512 times);
  // geometric growth stays logarithmic.
  EXPECT_LT(reallocations, 32u);
  EXPECT_EQ(store.covered(), 512u);
  // Rows must still be intact after all the growth.
  const auto row = store.VectorOf(511);
  for (float x : row) EXPECT_NEAR(x, 1.0f / std::sqrt(8.0f), 1e-6);
}

}  // namespace
}  // namespace koios::sim
