#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "koios/core/bucket_index.h"
#include "koios/core/candidate_state.h"
#include "koios/matching/semantic_overlap.h"
#include "test_util.h"

namespace koios::core {
namespace {

// ------------------------------------------------------------- BucketIndex --

TEST(BucketIndexTest, InsertAndPruneWholeBucketPrefix) {
  BucketIndex buckets;
  buckets.Insert(1, /*m=*/2, /*s_i=*/0.5);
  buckets.Insert(2, /*m=*/2, /*s_i=*/1.5);
  buckets.Insert(3, /*m=*/2, /*s_i=*/3.0);
  // theta = 3.0, sim = 0.5: prune if s_i + 2*0.5 < 3.0, i.e. s_i < 2.0.
  std::set<SetId> pruned;
  const size_t n = buckets.Prune(0.5, 3.0, [&](SetId id) { pruned.insert(id); });
  EXPECT_EQ(n, 2u);
  EXPECT_TRUE(pruned.count(1));
  EXPECT_TRUE(pruned.count(2));
  EXPECT_EQ(buckets.size(), 1u);
}

TEST(BucketIndexTest, ScanStopsAtFirstSurvivor) {
  BucketIndex buckets;
  buckets.Insert(1, 1, 0.1);
  buckets.Insert(2, 1, 5.0);
  buckets.Insert(3, 1, 0.2);  // ordered: 0.1, 0.2, 5.0
  size_t pruned = buckets.Prune(0.5, 1.0, [](SetId) {});
  EXPECT_EQ(pruned, 2u);  // 0.1 and 0.2 pruned, 5.0 survives
}

TEST(BucketIndexTest, DifferentBucketsDifferentCutoffs) {
  BucketIndex buckets;
  buckets.Insert(1, /*m=*/0, /*s_i=*/1.0);   // ub = 1.0
  buckets.Insert(2, /*m=*/10, /*s_i=*/1.0);  // ub = 1.0 + 10 s
  std::set<SetId> pruned;
  buckets.Prune(/*sim=*/0.5, /*theta=*/2.0, [&](SetId id) { pruned.insert(id); });
  EXPECT_TRUE(pruned.count(1));      // 1.0 < 2.0
  EXPECT_FALSE(pruned.count(2));     // 6.0 >= 2.0
}

TEST(BucketIndexTest, NeverPrunesTies) {
  BucketIndex buckets;
  buckets.Insert(1, 1, 1.5);  // ub at sim 0.5 == 2.0 == theta: tie, keep
  EXPECT_EQ(buckets.Prune(0.5, 2.0, [](SetId) {}), 0u);
  EXPECT_EQ(buckets.size(), 1u);
}

TEST(BucketIndexTest, MoveRelocates) {
  BucketIndex buckets;
  buckets.Insert(7, 3, 0.0);
  buckets.Move(7, 3, 0.0, 2, 0.9);
  EXPECT_EQ(buckets.size(), 1u);
  // Now prunable under its new bucket's rule only.
  size_t pruned = buckets.Prune(/*sim=*/0.1, /*theta=*/5.0, [](SetId) {});
  EXPECT_EQ(pruned, 1u);  // 0.9 + 2*0.1 = 1.1 < 5
}

TEST(BucketIndexTest, RemoveDiscards) {
  BucketIndex buckets;
  buckets.Insert(5, 2, 0.4);
  buckets.Remove(5, 2, 0.4);
  EXPECT_EQ(buckets.size(), 0u);
  EXPECT_EQ(buckets.num_buckets(), 0u);
}

TEST(BucketIndexTest, EmptyBucketsAreErased) {
  BucketIndex buckets;
  buckets.Insert(1, 4, 0.0);
  buckets.Prune(0.1, 100.0, [](SetId) {});
  EXPECT_EQ(buckets.num_buckets(), 0u);
}

// --------------------------------------------------------- CandidateState --

TEST(CandidateStateTest, GreedyBookkeeping) {
  CandidateState state(0, /*set_size=*/5, /*query_size=*/3);
  EXPECT_EQ(state.matched(), 0u);
  EXPECT_TRUE(state.EdgeValid(0, 100));
  state.AddMatch(0, 100, 0.9);
  EXPECT_FALSE(state.EdgeValid(0, 200));   // query pos matched
  EXPECT_FALSE(state.EdgeValid(1, 100));   // token matched
  EXPECT_TRUE(state.EdgeValid(1, 200));
  EXPECT_DOUBLE_EQ(state.partial_score(), 0.9);
}

TEST(CandidateStateTest, CapacityLimitsGreedyMatching) {
  CandidateState state(0, /*set_size=*/2, /*query_size=*/10);
  state.AddMatch(0, 100, 1.0);
  state.AddMatch(1, 101, 1.0);
  EXPECT_FALSE(state.EdgeValid(2, 102));  // capacity = min(2, 10) reached
}

TEST(CandidateStateTest, RowBoundTracksFirstEdgePerRow) {
  CandidateState state(0, /*set_size=*/4, /*query_size=*/3);
  EXPECT_TRUE(state.AddRow(1, 0.95));
  EXPECT_FALSE(state.AddRow(1, 0.90));  // row already retained
  EXPECT_TRUE(state.AddRow(0, 0.85));
  EXPECT_DOUBLE_EQ(state.row_sum(), 1.80);
  EXPECT_EQ(state.rows_seen(), 2u);
  EXPECT_EQ(state.remaining(), 1u);
  // UB at s = 0.8: 1.80 + 1 * 0.8.
  EXPECT_NEAR(state.UpperBound(0.8), 2.6, 1e-12);
}

TEST(CandidateStateTest, RowRetentionStopsAtCapacity) {
  CandidateState state(0, /*set_size=*/2, /*query_size=*/5);
  EXPECT_TRUE(state.AddRow(0, 1.0));
  EXPECT_TRUE(state.AddRow(1, 0.9));
  EXPECT_FALSE(state.AddRow(2, 0.8));  // capacity min(2, 5) = 2
  EXPECT_DOUBLE_EQ(state.UpperBound(0.8), 1.9);
  EXPECT_EQ(state.remaining(), 0u);
}

TEST(CandidateStateTest, IubPaperBoundCounterexample) {
  // DESIGN.md §5: the paper's Lemma 6 bound S_i + m_i*s fails on this
  // instance; the row-based bound stays sound. Weights:
  //   (q0,t0)=1.0, (q0,t1)=0.99, (q1,t0)=0.99, (q1,t1)=0.85; SO = 1.98.
  testing::TableSimilarity sim;
  sim.Set(0, 10, 1.0);
  sim.Set(0, 11, 0.99);
  sim.Set(1, 10, 0.99);
  sim.Set(1, 11, 0.85);
  const std::vector<TokenId> q = {0, 1}, c = {10, 11};
  const Score so = matching::SemanticOverlap(q, c, sim, 0.5);
  ASSERT_NEAR(so, 1.98, 1e-12);

  // Simulate the stream: (q0,t0,1.0), (q0,t1,.99), (q1,t0,.99), (q1,t1,.85).
  CandidateState state(0, 2, 2);
  // Greedy (lower bound) path:
  state.AddMatch(0, 10, 1.0);               // valid
  // (q0,t1): q0 matched, invalid. (q1,t0): t0 matched, invalid.
  state.AddMatch(1, 11, 0.85);              // valid
  EXPECT_NEAR(state.partial_score(), 1.85, 1e-12);
  // Paper's bound after the stream passes 0.85: S_i + m*s = 1.85 + 0 < SO!
  EXPECT_LT(state.partial_score(), so);

  // Row-based bound path (what Koios uses):
  CandidateState rows(0, 2, 2);
  rows.AddRow(0, 1.0);    // first q0 edge
  rows.AddRow(1, 0.99);   // first q1 edge
  EXPECT_GE(rows.UpperBound(0.85) + 1e-12, so);  // 1.99 >= 1.98: sound
  EXPECT_GE(state.partial_score(), so / 2.0);    // greedy LB guarantee holds
}

TEST(CandidateStateTest, UpperBoundSoundOnRandomInstances) {
  // Property: replaying any descending edge stream, the row bound always
  // dominates the exact SO at every prefix similarity.
  util::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t nq = 1 + rng.NextBounded(5), nc = 1 + rng.NextBounded(5);
    testing::TableSimilarity sim;
    struct Edge {
      uint32_t q;
      TokenId t;
      Score s;
    };
    std::vector<Edge> edges;
    for (uint32_t qi = 0; qi < nq; ++qi) {
      for (uint32_t cj = 0; cj < nc; ++cj) {
        if (rng.NextBool(0.7)) {
          const Score s = 0.5 + 0.5 * rng.NextDouble();
          sim.Set(qi, 100 + cj, s);
          edges.push_back({qi, 100 + cj, s});
        }
      }
    }
    std::vector<TokenId> q(nq), c(nc);
    for (uint32_t i = 0; i < nq; ++i) q[i] = i;
    for (uint32_t j = 0; j < nc; ++j) c[j] = 100 + j;
    const Score so = matching::SemanticOverlap(q, c, sim, 0.5);

    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.s > b.s; });
    CandidateState state(0, static_cast<uint32_t>(nc),
                         static_cast<uint32_t>(nq));
    for (const Edge& e : edges) {
      state.AddRow(e.q, e.s);
      EXPECT_GE(state.UpperBound(e.s) + 1e-9, so)
          << "unsound UB at trial " << trial;
    }
  }
}

}  // namespace
}  // namespace koios::core
