// The θlb→producer feedback loop (ISSUE 3): exactness of
// feedback-terminated searches against the brute-force oracle AND against
// a full drain-to-α run, plus the regression guarantee that the stream
// actually stops strictly above α when the top-k saturates early.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/edge_cache.h"
#include "koios/core/searcher.h"
#include "koios/matching/hungarian.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/sim/lsh_index.h"
#include "koios/sim/token_stream.h"
#include "test_util.h"

namespace koios::core {
namespace {

using testing::MakeRandomWorkload;
using testing::OracleKthScore;
using testing::OracleRanking;

constexpr double kTol = 1e-9;

// Runs the same query with feedback on and off and checks:
//  * both results are identical entry by entry (set ids and exact scores),
//  * both match the brute-force oracle (θ*k and every reported SO),
//  * feedback never produces more tuples than the drain.
void ExpectFeedbackExact(testing::RandomWorkload* w, SetId query_set,
                         size_t partitions, size_t k, Score alpha,
                         size_t num_threads, const std::string& label) {
  const auto q = w->corpus.sets.Tokens(query_set);
  SearcherOptions options;
  options.num_partitions = partitions;
  KoiosSearcher searcher(&w->corpus.sets, w->index.get(), options);

  SearchParams feedback;
  feedback.k = k;
  feedback.alpha = alpha;
  feedback.num_threads = num_threads;
  feedback.use_stream_feedback = true;
  SearchParams drain = feedback;
  drain.use_stream_feedback = false;

  const SearchResult rf = searcher.Search(q, feedback);
  const SearchResult rd = searcher.Search(q, drain);

  // Bit-identical top-k between the two modes.
  ASSERT_EQ(rf.topk.size(), rd.topk.size()) << label;
  for (size_t i = 0; i < rf.topk.size(); ++i) {
    EXPECT_EQ(rf.topk[i].set, rd.topk[i].set) << label << " entry " << i;
    EXPECT_DOUBLE_EQ(rf.topk[i].score, rd.topk[i].score)
        << label << " entry " << i;
  }

  // Both against the independent oracle.
  const auto oracle = OracleRanking(w->corpus.sets, q, *w->sim, alpha);
  const Score theta_star = OracleKthScore(oracle, k);
  ASSERT_EQ(rf.topk.size(), std::min(k, oracle.size())) << label;
  if (!rf.topk.empty()) {
    EXPECT_NEAR(rf.KthScore(), theta_star, kTol) << label;
    for (const ResultEntry& entry : rf.topk) {
      const Score truth = matching::SemanticOverlap(
          q, w->corpus.sets.Tokens(entry.set), *w->sim, alpha);
      EXPECT_NEAR(entry.score, truth, kTol) << label << " set " << entry.set;
    }
  }

  // The whole point: feedback must not produce more than the drain, and
  // the drain must report no stop (it ran to α).
  EXPECT_LE(rf.stats.stream_tuples_produced, rd.stats.stream_tuples_produced)
      << label;
  EXPECT_EQ(rd.stats.stream_stop_sim, 0.0) << label;
}

// ------------------------------------------------- exactness, k x p grid --

class FeedbackExactnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(FeedbackExactnessTest, MatchesDrainAndBruteForce) {
  const auto [partitions, k, num_threads] = GetParam();
  auto w = MakeRandomWorkload(140, 650, 5, 25, 7000 + partitions * 17 + k);
  for (SetId qid : {SetId{1}, SetId{57}}) {
    ExpectFeedbackExact(&w, qid, partitions, k, 0.75, num_threads,
                        "p=" + std::to_string(partitions) +
                            " k=" + std::to_string(k) +
                            " t=" + std::to_string(num_threads) +
                            " q=" + std::to_string(qid));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PartitionKGrid, FeedbackExactnessTest,
    ::testing::Combine(::testing::Values<size_t>(1, 4),     // partitions
                       ::testing::Values<size_t>(1, 5, 20),  // k
                       ::testing::Values<size_t>(1, 4)));    // threads

// --------------------------------------------------------- stop above α --

TEST(StreamFeedbackTest, StopsStrictlyAboveAlphaOnSkewedCorpus) {
  // Querying a stored set pushes θlb to |Q| through the self-match tuples
  // almost immediately (the set's own greedy matching completes first), so
  // with k = 1 the stop similarity τ = (θlb − ε)/|Q| ≈ 1 and the producer
  // must cut the skewed corpus's long α-tail off instead of draining it.
  auto w = MakeRandomWorkload(200, 800, 8, 30, 8101);
  const SetId query_set = 13;
  const auto q = w.corpus.sets.Tokens(query_set);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());

  SearchParams params;
  params.k = 1;
  params.alpha = 0.5;  // deep drain without feedback
  const SearchResult rf = searcher.Search(q, params);

  SearchParams drain = params;
  drain.use_stream_feedback = false;
  const SearchResult rd = searcher.Search(q, drain);

  EXPECT_GT(rf.stats.stream_stop_sim, params.alpha)
      << "feedback should stop the stream above α";
  EXPECT_LT(rf.stats.stream_tuples_produced, rd.stats.stream_tuples_produced)
      << "feedback should prune producer work";
  // Same exact answer regardless.
  ASSERT_EQ(rf.topk.size(), rd.topk.size());
  for (size_t i = 0; i < rf.topk.size(); ++i) {
    EXPECT_EQ(rf.topk[i].set, rd.topk[i].set);
    EXPECT_DOUBLE_EQ(rf.topk[i].score, rd.topk[i].score);
  }
}

TEST(StreamFeedbackTest, PartitionedSearchSharesGlobalTheta) {
  // §VI: the stop machinery derives from the cross-partition
  // GlobalThreshold. In a serial 4-partition search the partition holding
  // the query set publishes θlb = |Q|, after which every later partition's
  // consumer breaks almost immediately — aggregate consumption must drop
  // well below the drain's, and production must never exceed it. The
  // threaded run (producer races the consumers, so the stop point varies)
  // must still return the identical exact answer.
  auto w = MakeRandomWorkload(200, 800, 8, 30, 8102);
  SearcherOptions options;
  options.num_partitions = 4;
  KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  const auto q = w.corpus.sets.Tokens(21);
  SearchParams params;
  params.k = 1;
  params.alpha = 0.55;
  const SearchResult serial = searcher.Search(q, params);

  SearchParams drain = params;
  drain.use_stream_feedback = false;
  const SearchResult drained = searcher.Search(q, drain);
  EXPECT_LT(serial.stats.stream_tuples, drained.stats.stream_tuples);
  EXPECT_LE(serial.stats.stream_tuples_produced,
            drained.stats.stream_tuples_produced);

  params.num_threads = 4;
  const SearchResult threaded = searcher.Search(q, params);
  EXPECT_LE(threaded.stats.stream_tuples_produced,
            drained.stats.stream_tuples_produced);
  ASSERT_EQ(threaded.topk.size(), serial.topk.size());
  for (size_t i = 0; i < threaded.topk.size(); ++i) {
    EXPECT_EQ(threaded.topk[i].set, serial.topk[i].set);
    EXPECT_DOUBLE_EQ(threaded.topk[i].score, serial.topk[i].score);
  }
}

// -------------------------------------------------- producer pacing race --

TEST(StreamFeedbackTest, PacedProducerWaitsForSlowConsumer) {
  // The overlapped-mode production race (ROADMAP follow-up, fixed in this
  // PR): a free-running deferred producer can drain the stream to α before
  // a slow consumer has processed enough tuples to declare its stop
  // similarity, forfeiting the feedback savings entirely. With pacing the
  // producer must stay within its lead of the consumer's hand-off
  // position, so even a deliberately slow consumer ends the stream with
  // far fewer tuples produced than a full drain.
  auto w = MakeRandomWorkload(120, 900, 8, 30, 8107);
  // A wide query (several stored sets unioned) over a low α: a deep drain,
  // so the paced/unpaced difference is unmistakable.
  std::vector<TokenId> q;
  for (const SetId id : {SetId{5}, SetId{9}, SetId{23}, SetId{31}}) {
    const auto qs = w.corpus.sets.Tokens(id);
    q.insert(q.end(), qs.begin(), qs.end());
  }
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
  const Score alpha = 0.3;  // deep α-tail: the drain is large

  // Reference: the unpaced full drain of this stream.
  size_t full_drain = 0;
  {
    sim::TokenStream stream(q, w.index.get(), alpha,
                            [](TokenId) { return true; });
    EdgeCache drain(&stream, EdgeCache::Deferred{});
    drain.Materialize();
    full_drain = drain.produced();
  }

  constexpr size_t kConsumeTarget = 128;
  constexpr size_t kChunk = 32;
  constexpr size_t kLead = 64;
  // The bound pacing must enforce: the hand-off position when the stop was
  // declared (target plus up to one pull chunk), plus the lead, plus one
  // publish batch of producer overshoot.
  constexpr size_t kPacedBound = kConsumeTarget + kChunk + kLead + 32;
  ASSERT_GT(full_drain, 2 * kPacedBound)
      << "corpus too small to distinguish a paced run from a drain";

  SearchContext ctx;
  ctx.BeginSearch(/*num_consumers=*/1);
  sim::TokenStream stream(q, w.index.get(), alpha,
                          [](TokenId) { return true; });
  EdgeCache cache(
      &stream, EdgeCache::Deferred{}, w.sim.get(),
      [&ctx] { return ctx.stop_controller().ProducerStop(); }, nullptr,
      /*expected_consumers=*/1, /*producer_lead=*/kLead);
  ASSERT_TRUE(cache.PacingEnabled());

  std::thread producer([&] { cache.Materialize(); });
  {
    // Deliberately slow consumer: the warm cursor cache lets the producer
    // build tuples orders of magnitude faster than this loop consumes
    // them, which is exactly the racy regime.
    EdgeCache::ConsumerGuard consumer(&cache);
    std::vector<sim::StreamTuple> chunk(kChunk);
    size_t consumed = 0;
    Score last_sim = 1.0;
    while (consumed < kConsumeTarget) {
      const size_t n =
          cache.NextTuples(consumed, std::span<sim::StreamTuple>(chunk));
      if (n == 0) break;
      consumed += n;
      consumer.Advance(consumed);
      last_sim = chunk[n - 1].sim;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ctx.stop_controller().PublishConsumerStop(last_sim);
  }
  producer.join();

  EXPECT_FALSE(cache.ExhaustedToAlpha());
  EXPECT_LE(cache.produced(), kPacedBound)
      << "producer outran its lead over the slow consumer";
  EXPECT_LT(cache.produced(), full_drain / 2)
      << "slow consumer still lost the streaming savings";
}

// ------------------------------------------ matrix completion, directly --

TEST(StreamFeedbackTest, BuildMatrixCompletesBelowStopEdges) {
  // A cache whose producer was stopped early must still hand exact
  // matching the full simα matrix: the missing below-stop edges are
  // completed through the similarity's batch kernels.
  auto w = MakeRandomWorkload(80, 400, 6, 18, 8103);
  const auto qs = w.corpus.sets.Tokens(2);
  std::vector<TokenId> q(qs.begin(), qs.end());
  const Score alpha = 0.6;

  sim::TokenStream stream(q, w.index.get(), alpha,
                          [](TokenId) { return true; });
  // Fixed stop threshold well above α: the stream is guaranteed to stop
  // early (self-matches at 1.0 are produced, the tail is withheld).
  EdgeCache cache(&stream, EdgeCache::Deferred{}, w.sim.get(),
                  [] { return 0.9; });
  cache.Materialize();
  ASSERT_FALSE(cache.ExhaustedToAlpha());
  ASSERT_GE(cache.stop_sim(), alpha);

  for (SetId id = 0; id < 40; ++id) {
    std::vector<uint32_t> rows, cols;
    const auto m = cache.BuildMatrix(w.corpus.sets.Tokens(id), &rows, &cols);
    const Score via_cache = matching::HungarianMatcher::Solve(m).score;
    const Score direct = matching::SemanticOverlap(
        q, w.corpus.sets.Tokens(id), *w.sim, alpha);
    EXPECT_NEAR(via_cache, direct, 1e-9) << "set " << id;
  }
}

// -------------------------------------------- approximate backends gate --

TEST(StreamFeedbackTest, ApproximateIndexesDoNotEnableFeedback) {
  // LSH/MinHash results are exact only w.r.t. the neighbors the probe
  // returns; matrix completion from the raw similarity would score pairs
  // the probe never surfaced and silently change results between modes.
  // The searcher must therefore keep the drain-to-α path for them.
  auto w = MakeRandomWorkload(150, 500, 5, 20, 8105, /*coverage=*/1.0);
  sim::LshIndexSpec spec;
  spec.num_tables = 16;
  spec.bits_per_table = 6;
  sim::CosineLshIndex lsh(w.corpus.vocabulary, &w.model->store(), w.sim.get(),
                          spec);
  ASSERT_FALSE(lsh.exact_neighbors());
  ASSERT_NE(lsh.similarity(), nullptr);
  KoiosSearcher searcher(&w.corpus.sets, &lsh);
  const auto q = w.corpus.sets.Tokens(3);
  SearchParams feedback;
  feedback.k = 5;
  feedback.alpha = 0.7;
  SearchParams drain = feedback;
  drain.use_stream_feedback = false;
  const SearchResult rf = searcher.Search(q, feedback);
  const SearchResult rd = searcher.Search(q, drain);
  // Feedback is gated off: both runs drain identically.
  EXPECT_EQ(rf.stats.stream_stop_sim, 0.0);
  EXPECT_EQ(rf.stats.stream_tuples_produced, rd.stats.stream_tuples_produced);
  ASSERT_EQ(rf.topk.size(), rd.topk.size());
  for (size_t i = 0; i < rf.topk.size(); ++i) {
    EXPECT_EQ(rf.topk[i].set, rd.topk[i].set);
    EXPECT_DOUBLE_EQ(rf.topk[i].score, rd.topk[i].score);
  }
}

// ------------------------------------------- adaptive survivor budget --

TEST(StreamFeedbackTest, AdaptiveSurvivorBudgetStaysExact) {
  // The adaptive (rent-to-buy) budget only moves WHERE the stop lands, so
  // both policies must return the drain's exact answer, and a stop under
  // either must record the budget that authorized it.
  auto w = MakeRandomWorkload(200, 800, 8, 30, 8105);
  const auto q = w.corpus.sets.Tokens(21);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());

  SearchParams drain;
  drain.k = 5;
  drain.alpha = 0.6;
  drain.use_stream_feedback = false;
  const SearchResult rd = searcher.Search(q, drain);

  for (const double em_cost_tuples : {4.0, 64.0, 4096.0}) {
    SearchParams adaptive = drain;
    adaptive.use_stream_feedback = true;
    adaptive.use_adaptive_survivor_budget = true;
    adaptive.adaptive_em_cost_tuples = em_cost_tuples;
    const SearchResult ra = searcher.Search(q, adaptive);

    ASSERT_EQ(ra.topk.size(), rd.topk.size()) << "ratio " << em_cost_tuples;
    for (size_t i = 0; i < ra.topk.size(); ++i) {
      EXPECT_EQ(ra.topk[i].set, rd.topk[i].set) << "ratio " << em_cost_tuples;
      EXPECT_DOUBLE_EQ(ra.topk[i].score, rd.topk[i].score)
          << "ratio " << em_cost_tuples;
    }
    EXPECT_LE(ra.stats.stream_tuples_produced, rd.stats.stream_tuples_produced);
    if (ra.stats.stream_stop_sim > 0.0) {
      // The consumer stopped: the budget in force was recorded and honors
      // the floor.
      EXPECT_GE(ra.stats.stream_survivor_budget, 32u);
    }
  }
}

TEST(StreamFeedbackTest, AdaptiveBudgetDefaultsOff) {
  // Default params keep the fixed max(32, 4k) policy: a stopping search
  // records exactly that budget.
  auto w = MakeRandomWorkload(200, 800, 8, 30, 8106);
  const auto q = w.corpus.sets.Tokens(13);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 1;
  params.alpha = 0.5;
  ASSERT_FALSE(params.use_adaptive_survivor_budget);
  const SearchResult r = searcher.Search(q, params);
  if (r.stats.stream_stop_sim > 0.0) {
    EXPECT_EQ(r.stats.stream_survivor_budget, std::max<size_t>(32, 4 * params.k));
  }
}

// ------------------------------------------------------ workspace reuse --

TEST(StreamFeedbackTest, HungarianWorkspaceIsReused) {
  auto w = MakeRandomWorkload(150, 500, 5, 25, 8104);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = w.corpus.sets.Tokens(7);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.7;
  const SearchResult r = searcher.Search(q, params);
  const size_t solves = r.stats.em_computed + r.stats.em_early_terminated +
                        r.stats.result_verification_ems;
  if (solves > 1) {
    EXPECT_GT(r.stats.em_workspace_reuses, 0u);
  }
}

}  // namespace
}  // namespace koios::core
