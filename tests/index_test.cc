#include <gtest/gtest.h>

#include <vector>

#include "koios/index/inverted_index.h"
#include "koios/index/set_collection.h"

namespace koios::index {
namespace {

// ----------------------------------------------------------- SetCollection --

TEST(SetCollectionTest, StoresSortedDeduplicated) {
  SetCollection sets;
  const SetId id = sets.AddSet(std::vector<TokenId>{5, 3, 5, 1, 3});
  EXPECT_EQ(sets.SetSize(id), 3u);
  const auto tokens = sets.Tokens(id);
  EXPECT_EQ(tokens[0], 1u);
  EXPECT_EQ(tokens[1], 3u);
  EXPECT_EQ(tokens[2], 5u);
}

TEST(SetCollectionTest, MultipleSetsIndependent) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2});
  sets.AddSet(std::vector<TokenId>{3});
  sets.AddSet(std::vector<TokenId>{4, 5, 6});
  EXPECT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets.SetSize(0), 2u);
  EXPECT_EQ(sets.SetSize(1), 1u);
  EXPECT_EQ(sets.SetSize(2), 3u);
  EXPECT_EQ(sets.TotalTokens(), 6u);
}

TEST(SetCollectionTest, EmptySetAllowed) {
  SetCollection sets;
  const SetId id = sets.AddSet(std::vector<TokenId>{});
  EXPECT_EQ(sets.SetSize(id), 0u);
  EXPECT_TRUE(sets.Tokens(id).empty());
}

TEST(SetCollectionTest, VanillaOverlapMergesSorted) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 3, 5, 7, 9});
  const std::vector<TokenId> query = {3, 4, 5, 9, 10};
  EXPECT_EQ(sets.VanillaOverlap(query, 0), 3u);  // {3, 5, 9}
}

TEST(SetCollectionTest, VanillaOverlapDisjoint) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2});
  const std::vector<TokenId> query = {3, 4};
  EXPECT_EQ(sets.VanillaOverlap(query, 0), 0u);
}

TEST(SetCollectionTest, StatsForTableOne) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2, 3, 4});
  sets.AddSet(std::vector<TokenId>{2, 3});
  EXPECT_EQ(sets.MaxSetSize(), 4u);
  EXPECT_DOUBLE_EQ(sets.AvgSetSize(), 3.0);
  EXPECT_EQ(sets.DistinctTokens(), 4u);
  EXPECT_EQ(sets.TokenIdBound(), 5u);
}

// ----------------------------------------------------------- InvertedIndex --

TEST(InvertedIndexTest, PostingsContainAllSets) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2});
  sets.AddSet(std::vector<TokenId>{2, 3});
  sets.AddSet(std::vector<TokenId>{2});
  InvertedIndex index(sets);
  const auto p2 = index.Postings(2);
  ASSERT_EQ(p2.size(), 3u);
  EXPECT_EQ(p2[0], 0u);
  EXPECT_EQ(p2[1], 1u);
  EXPECT_EQ(p2[2], 2u);
  EXPECT_EQ(index.Postings(1).size(), 1u);
  EXPECT_EQ(index.Postings(3).size(), 1u);
}

TEST(InvertedIndexTest, MissingTokenYieldsEmpty) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1});
  InvertedIndex index(sets);
  EXPECT_TRUE(index.Postings(99).empty());
  EXPECT_TRUE(index.Postings(0).empty());  // id below bound but unused
  EXPECT_FALSE(index.InVocabulary(0));
  EXPECT_TRUE(index.InVocabulary(1));
}

TEST(InvertedIndexTest, SubsetIndexesOnlyItsSets) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{1, 2});  // set 0
  sets.AddSet(std::vector<TokenId>{2, 3});  // set 1
  sets.AddSet(std::vector<TokenId>{1, 3});  // set 2
  const std::vector<SetId> subset = {0, 2};
  InvertedIndex index(sets, subset);
  const auto p1 = index.Postings(1);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_EQ(p1[0], 0u);
  EXPECT_EQ(p1[1], 2u);
  const auto p2 = index.Postings(2);
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0], 0u);  // set 1 not in this partition
}

TEST(InvertedIndexTest, VocabularyListsDistinctTokens) {
  SetCollection sets;
  sets.AddSet(std::vector<TokenId>{5, 9});
  sets.AddSet(std::vector<TokenId>{9, 12});
  InvertedIndex index(sets);
  const auto vocab = index.Vocabulary();
  ASSERT_EQ(vocab.size(), 3u);
  EXPECT_EQ(vocab[0], 5u);
  EXPECT_EQ(vocab[1], 9u);
  EXPECT_EQ(vocab[2], 12u);
  EXPECT_EQ(index.NumTokens(), 3u);
  EXPECT_EQ(index.MaxPostingLength(), 2u);
}

TEST(InvertedIndexTest, PartitionsCoverWholeCollection) {
  SetCollection sets;
  for (TokenId t = 0; t < 30; ++t) {
    sets.AddSet(std::vector<TokenId>{t, t + 1, t + 2});
  }
  std::vector<SetId> even, odd;
  for (SetId id = 0; id < sets.size(); ++id) {
    (id % 2 == 0 ? even : odd).push_back(id);
  }
  InvertedIndex full(sets), pe(sets, even), po(sets, odd);
  for (TokenId t = 0; t < 32; ++t) {
    EXPECT_EQ(full.Postings(t).size(),
              pe.Postings(t).size() + po.Postings(t).size());
  }
}

}  // namespace
}  // namespace koios::index
