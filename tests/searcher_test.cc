#include <gtest/gtest.h>

#include <vector>

#include "koios/core/searcher.h"
#include "koios/sim/lsh_index.h"
#include "test_util.h"

namespace koios::core {
namespace {

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

TEST(SearcherTest, ResultsAreSortedDescending) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 701);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 10;
  const auto result = searcher.Search(QueryOf(w, 0), params);
  for (size_t i = 1; i < result.topk.size(); ++i) {
    EXPECT_GE(result.topk[i - 1].score, result.topk[i].score - 1e-12);
  }
}

TEST(SearcherTest, RepeatedSearchesAreDeterministic) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 702);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 7;
  const auto query = QueryOf(w, 14);
  const auto r1 = searcher.Search(query, params);
  const auto r2 = searcher.Search(query, params);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_EQ(r1.topk[i].set, r2.topk[i].set);
    EXPECT_DOUBLE_EQ(r1.topk[i].score, r2.topk[i].score);
  }
}

TEST(SearcherTest, VocabularyPredicateSpansPartitions) {
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 703);
  SearcherOptions options;
  options.num_partitions = 4;
  KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  for (TokenId t : w.corpus.vocabulary) {
    EXPECT_TRUE(searcher.InVocabulary(t));
  }
  EXPECT_FALSE(searcher.InVocabulary(static_cast<TokenId>(5'000'000)));
}

TEST(SearcherTest, StatsTimersPopulated) {
  auto w = testing::MakeRandomWorkload(80, 400, 5, 20, 704);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  const auto result = searcher.Search(QueryOf(w, 4), params);
  EXPECT_GT(result.stats.timers.Get("refinement"), 0.0);
  EXPECT_GE(result.stats.timers.Get("postprocess"), 0.0);
  EXPECT_GT(result.stats.memory.TotalBytes(), 0u);
  EXPECT_GT(result.stats.stream_tuples, 0u);
}

TEST(SearcherTest, KLargerThanRepositoryIsSafe) {
  auto w = testing::MakeRandomWorkload(20, 150, 4, 10, 705);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 500;
  const auto result = searcher.Search(QueryOf(w, 2), params);
  EXPECT_LE(result.topk.size(), 20u);
  // All returned entries must be distinct sets.
  std::set<SetId> distinct;
  for (const auto& e : result.topk) distinct.insert(e.set);
  EXPECT_EQ(distinct.size(), result.topk.size());
}

TEST(SearcherTest, AlphaOneKeepsOnlyIdenticalElements) {
  // With alpha = 1.0, semantic overlap degenerates to vanilla overlap.
  auto w = testing::MakeRandomWorkload(80, 300, 6, 15, 706);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 5;
  params.alpha = 1.0;
  const auto query = QueryOf(w, 9);
  std::vector<TokenId> sorted_query = query;
  std::sort(sorted_query.begin(), sorted_query.end());
  const auto result = searcher.Search(query, params);
  for (const auto& entry : result.topk) {
    // Identical embeddings in a zero-noise cluster could reach cosine 1.0,
    // but the oracle must agree with the reported score either way.
    const Score so = matching::SemanticOverlap(
        query, w.corpus.sets.Tokens(entry.set), *w.sim, 1.0);
    EXPECT_NEAR(entry.score, so, 1e-6);
    EXPECT_GE(so + 1e-9,
              static_cast<Score>(
                  w.corpus.sets.VanillaOverlap(sorted_query, entry.set)));
  }
}

TEST(SearcherTest, WorksWithLshIndexAgainstLshOracle) {
  // With an approximate index Koios is exact w.r.t. the neighbors the
  // index returns (paper §VIII-E). We can't compare against the full
  // oracle, but results must be valid sets with correct exact scores.
  auto w = testing::MakeRandomWorkload(80, 400, 5, 15, 707, /*coverage=*/1.0);
  sim::LshIndexSpec spec;
  spec.num_tables = 16;
  spec.bits_per_table = 8;
  sim::CosineLshIndex lsh(w.corpus.vocabulary, &w.model->store(), w.sim.get(),
                          spec);
  KoiosSearcher searcher(&w.corpus.sets, &lsh);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.8;
  const auto query = QueryOf(w, 3);
  const auto result = searcher.Search(query, params);
  EXPECT_FALSE(result.topk.empty());
  // The query's own source set must be found: its self-matches flow
  // through the vocabulary predicate, not the LSH buckets.
  EXPECT_EQ(result.topk[0].set, 3u);
  EXPECT_NEAR(result.topk[0].score, static_cast<Score>(query.size()), 1e-6);
}

TEST(SearcherTest, PartitionSeedChangesAssignmentNotResult) {
  auto w = testing::MakeRandomWorkload(90, 400, 5, 18, 708);
  SearcherOptions o1, o2;
  o1.num_partitions = o2.num_partitions = 5;
  o1.partition_seed = 1;
  o2.partition_seed = 999;
  KoiosSearcher s1(&w.corpus.sets, w.index.get(), o1);
  KoiosSearcher s2(&w.corpus.sets, w.index.get(), o2);
  SearchParams params;
  params.k = 6;
  const auto query = QueryOf(w, 22);
  const auto r1 = s1.Search(query, params);
  const auto r2 = s2.Search(query, params);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  EXPECT_NEAR(r1.KthScore(), r2.KthScore(), 1e-6);
}

}  // namespace
}  // namespace koios::core
