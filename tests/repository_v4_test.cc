// Tests for the v4 zero-copy mmap repository format: round trips, the
// borrowed-storage contract, the exhaustive corruption matrix (every
// truncation, every single-bit flip), golden-file compatibility across
// container generations, and the zero-requantization regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/io/repository_v4.h"
#include "koios/io/serialization.h"
#include "koios/serve/snapshot.h"

namespace koios::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// The deterministic fixture corpus every test here shares (and the same
/// shape the checked-in golden files were generated from — see
/// tests/testdata/README.md): 10 tokens, 5 sets, dim-4 quantized
/// embeddings, all hand-seeded with no RNG so the bytes are reproducible
/// forever.
struct Fixture {
  text::Dictionary dict;
  index::SetCollection sets;
  embedding::EmbeddingStore store{4};
};

Fixture MakeFixture() {
  Fixture f;
  for (int t = 0; t < 10; ++t) f.dict.Intern("token_" + std::to_string(t));
  f.sets.AddSet(std::vector<TokenId>{0, 1, 2});
  f.sets.AddSet(std::vector<TokenId>{2, 3, 4, 5});
  f.sets.AddSet(std::vector<TokenId>{5, 6});
  f.sets.AddSet(std::vector<TokenId>{0, 7, 8, 9});
  f.sets.AddSet(std::vector<TokenId>{1, 4, 9});
  for (TokenId t = 0; t < 10; ++t) {
    if (t == 6) continue;  // one OOV token
    const float a = 1.0f + static_cast<float>(t);
    f.store.Add(t, std::vector<float>{a, 1.0f / a, 0.25f * a,
                                      static_cast<float>(t % 3)});
  }
  f.store.Finalize();
  return f;
}

/// The three feature shapes a v4 file can take — the corruption matrices
/// run over all of them (different section counts, different layouts).
enum class V4Variant { kFull, kUnquantized, kNoEmbeddings };

std::string V4Bytes(V4Variant variant = V4Variant::kFull) {
  Fixture f = MakeFixture();
  embedding::EmbeddingStore unquantized(4);
  const embedding::EmbeddingStore* store = nullptr;
  switch (variant) {
    case V4Variant::kFull:
      store = &f.store;
      break;
    case V4Variant::kUnquantized:
      for (TokenId t = 0; t < 10; ++t) {
        if (f.store.Has(t)) unquantized.AddNormalized(t, f.store.VectorOf(t));
      }
      store = &unquantized;
      break;
    case V4Variant::kNoEmbeddings:
      break;
  }
  const std::string path = TempPath("v4_fixture.repo");
  EXPECT_TRUE(SaveRepositoryV4(f.dict, f.sets, store, path).ok());
  std::string bytes = FileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

constexpr V4Variant kAllVariants[] = {
    V4Variant::kFull, V4Variant::kUnquantized, V4Variant::kNoEmbeddings};

/// Opens `bytes` as a v4 file and borrows EVERYTHING (dict, sets,
/// embeddings, vocabulary) — the full lazy-validation surface.
util::Status OpenAndBorrowAll(const std::string& bytes, bool verify) {
  const std::string path = TempPath("v4_mutated.repo");
  WriteBytes(path, bytes);
  auto view = MmapRepositoryView::Open(path, MmapOptions{.verify = verify});
  std::remove(path.c_str());
  if (!view.ok()) return view.status();
  auto dict = view.value()->BorrowDictionary();
  if (!dict.ok()) return dict.status();
  auto sets = view.value()->BorrowSets();
  if (!sets.ok()) return sets.status();
  auto vocab = view.value()->Vocabulary();
  if (!vocab.ok()) return vocab.status();
  if (view.value()->has_embeddings()) {
    auto store = view.value()->BorrowEmbeddings();
    if (!store.ok()) return store.status();
  }
  return util::Status::OK();
}

// ------------------------------------------------------------ round trip --

TEST(RepositoryV4Test, BorrowedRoundTripMatchesOriginal) {
  Fixture f = MakeFixture();
  const std::string path = TempPath("v4_roundtrip.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, path).ok());

  auto view = MmapRepositoryView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto dict = view.value()->BorrowDictionary();
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_TRUE(dict.value().borrowed());
  ASSERT_EQ(dict.value().size(), f.dict.size());
  for (TokenId t = 0; t < f.dict.size(); ++t) {
    EXPECT_EQ(dict.value().TokenOf(t), f.dict.TokenOf(t));
    EXPECT_EQ(dict.value().Lookup(f.dict.TokenOf(t)), t);
  }

  auto sets = view.value()->BorrowSets();
  ASSERT_TRUE(sets.ok()) << sets.status().ToString();
  EXPECT_TRUE(sets.value().borrowed());
  ASSERT_EQ(sets.value().size(), f.sets.size());
  EXPECT_EQ(sets.value().TokenIdBound(), f.sets.TokenIdBound());
  for (SetId s = 0; s < f.sets.size(); ++s) {
    const auto got = sets.value().Tokens(s);
    const auto want = f.sets.Tokens(s);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }

  auto store = view.value()->BorrowEmbeddings();
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store.value().borrowed());
  EXPECT_EQ(store.value().dim(), f.store.dim());
  EXPECT_EQ(store.value().covered(), f.store.covered());
  for (TokenId a = 0; a < 10; ++a) {
    EXPECT_EQ(store.value().Has(a), f.store.Has(a));
    for (TokenId b = 0; b < 10; ++b) {
      // Bit-identical, not approximately equal: same bytes, same kernel.
      EXPECT_EQ(store.value().Cosine(a, b), f.store.Cosine(a, b));
    }
  }

  auto vocab = view.value()->Vocabulary();
  ASSERT_TRUE(vocab.ok());
  const std::vector<TokenId> expected_vocab = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_EQ(vocab.value().size(), expected_vocab.size());
  EXPECT_TRUE(std::equal(vocab.value().begin(), vocab.value().end(),
                         expected_vocab.begin()));
  std::remove(path.c_str());
}

TEST(RepositoryV4Test, LoadRepositoryMaterializesV4) {
  // The stream-compat entry point must route v4 files through the mmap
  // view and hand back fully OWNED artifacts.
  Fixture f = MakeFixture();
  const std::string path = TempPath("v4_materialize.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, path).ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_FALSE(repo.value().dict.borrowed());
  EXPECT_FALSE(repo.value().sets.borrowed());
  EXPECT_FALSE(repo.value().store.borrowed());
  EXPECT_EQ(repo.value().dict.size(), f.dict.size());
  EXPECT_EQ(repo.value().sets.size(), f.sets.size());
  ASSERT_TRUE(repo.value().has_embeddings);
  EXPECT_TRUE(repo.value().store.quantized());
  for (TokenId a = 0; a < 10; ++a) {
    for (TokenId b = 0; b < 10; ++b) {
      EXPECT_EQ(repo.value().store.Cosine(a, b), f.store.Cosine(a, b));
    }
  }
  std::remove(path.c_str());
}

TEST(RepositoryV4Test, EmbeddinglessRepositoryRoundTrips) {
  Fixture f = MakeFixture();
  const std::string path = TempPath("v4_noembed.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, nullptr, path).ok());
  auto view = MmapRepositoryView::Open(path, MmapOptions{.verify = true});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value()->has_embeddings());
  EXPECT_FALSE(view.value()->BorrowEmbeddings().ok());
  EXPECT_TRUE(view.value()->BorrowSets().ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok());
  EXPECT_FALSE(repo.value().has_embeddings);
  std::remove(path.c_str());
}

TEST(RepositoryV4Test, SaveIsAtomic) {
  // A v4 save over an existing repository file must leave the original
  // intact until the rename (same contract as SaveRepository).
  Fixture f = MakeFixture();
  const std::string path = TempPath("v4_atomic.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, path).ok());
  const std::string original = FileBytes(path);
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, path).ok());
  EXPECT_EQ(FileBytes(path), original) << "deterministic writer";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// ------------------------------------------------------ corruption matrix --

TEST(V4CorruptionMatrixTest, EveryTruncationReturnsError) {
  // Every strict prefix must come back as a clean error — in BOTH lazy
  // and eager modes, for every feature shape, and in particular without
  // a SIGBUS from mapping a short file (the structural pass checks the
  // exact size before any section byte is dereferenced).
  for (const V4Variant variant : kAllVariants) {
    const std::string bytes = V4Bytes(variant);
    ASSERT_GT(bytes.size(), 64u);
    for (size_t len = 0; len < bytes.size(); ++len) {
      const std::string prefix = bytes.substr(0, len);
      EXPECT_FALSE(OpenAndBorrowAll(prefix, /*verify=*/false).ok())
          << "lazy load of truncation to " << len << " bytes succeeded";
      EXPECT_FALSE(OpenAndBorrowAll(prefix, /*verify=*/true).ok())
          << "eager load of truncation to " << len << " bytes succeeded";
    }
    EXPECT_TRUE(OpenAndBorrowAll(bytes, /*verify=*/false).ok());
    EXPECT_TRUE(OpenAndBorrowAll(bytes, /*verify=*/true).ok());
  }
}

TEST(V4CorruptionMatrixTest, EverySingleBitFlipFailsEagerVerification) {
  // Eager mode checksums every section (bulk arenas included), so EVERY
  // single-bit flip anywhere in the file — header, section table, arena
  // padding, offset tables, data — must surface as a clean error Status,
  // for every feature shape.
  for (const V4Variant variant : kAllVariants) {
    const std::string bytes = V4Bytes(variant);
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = bytes;
        mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
        auto status = OpenAndBorrowAll(mutated, /*verify=*/true);
        EXPECT_FALSE(status.ok())
            << "bit " << bit << " at byte " << pos << " loaded eagerly";
      }
    }
  }
}

TEST(V4CorruptionMatrixTest, LazyModeCatchesStructuralAndMetadataFlips) {
  // Lazy mode skips the three bulk-arena CRCs by design (that is the
  // load-time win). Everything BEFORE the first section — header, section
  // table, the padding gap — plus every metadata section is still fully
  // protected at open/borrow time; enforce the matrix over that region.
  const std::string bytes = V4Bytes();
  V4Header header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  std::vector<SectionEntry> table(header.section_count);
  std::memcpy(table.data(), bytes.data() + sizeof(header),
              table.size() * sizeof(SectionEntry));
  const size_t first_section = table.front().offset;
  for (size_t pos = 0; pos < first_section; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
      EXPECT_FALSE(OpenAndBorrowAll(mutated, /*verify=*/false).ok())
          << "bit " << bit << " at pre-section byte " << pos
          << " loaded lazily";
    }
  }
  // Metadata sections (everything except the set-token, embed-data and
  // quant-code bulk arenas) are CRC-checked on first borrow even lazily.
  for (const SectionEntry& e : table) {
    if (e.kind == kSetTokens || e.kind == kEmbedData || e.kind == kQuantCodes) {
      continue;
    }
    for (uint64_t pos = e.offset; pos < e.offset + e.length; ++pos) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ 1);
      EXPECT_FALSE(OpenAndBorrowAll(mutated, /*verify=*/false).ok())
          << "flip in metadata section " << e.kind << " at " << pos
          << " loaded lazily";
    }
  }
}

TEST(V4CorruptionMatrixTest, TrailingBytesRejected) {
  std::string bytes = V4Bytes();
  bytes.push_back('\0');
  EXPECT_FALSE(OpenAndBorrowAll(bytes, /*verify=*/false).ok());
}

TEST(V4CorruptionMatrixTest, EmptyAndForeignFilesRejected) {
  EXPECT_FALSE(OpenAndBorrowAll("", false).ok());
  EXPECT_FALSE(OpenAndBorrowAll(std::string(4096, 'x'), false).ok());
  EXPECT_FALSE(OpenAndBorrowAll(std::string(4096, '\0'), false).ok());
}

// ---------------------------------------------------------- golden files --

std::string GoldenPath(const char* name) {
  return std::string(KOIOS_TESTDATA_DIR) + "/" + name;
}

/// What the checked-in golden repositories contain (they were written by
/// this repo's own savers from MakeFixture()'s corpus — see
/// tests/testdata/README.md for the regeneration recipe).
void ExpectFixtureContents(const LoadedRepository& repo) {
  const Fixture f = MakeFixture();
  ASSERT_EQ(repo.dict.size(), f.dict.size());
  for (TokenId t = 0; t < f.dict.size(); ++t) {
    EXPECT_EQ(repo.dict.TokenOf(t), f.dict.TokenOf(t));
  }
  ASSERT_EQ(repo.sets.size(), f.sets.size());
  for (SetId s = 0; s < f.sets.size(); ++s) {
    const auto got = repo.sets.Tokens(s);
    const auto want = f.sets.Tokens(s);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
  ASSERT_TRUE(repo.has_embeddings);
  for (TokenId a = 0; a < 10; ++a) {
    for (TokenId b = 0; b < 10; ++b) {
      EXPECT_EQ(repo.store.Cosine(a, b), f.store.Cosine(a, b));
    }
  }
}

TEST(GoldenCompatTest, V1GoldenStillLoads) {
  auto repo = LoadRepository(GoldenPath("golden_v1.repo"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  ExpectFixtureContents(repo.value());
}

TEST(GoldenCompatTest, V3GoldenStillLoads) {
  auto repo = LoadRepository(GoldenPath("golden_v3.repo"));
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  ExpectFixtureContents(repo.value());
}

TEST(GoldenCompatTest, V2IsRejected) {
  // v2 never shipped: a v3 body with the version byte patched to 2 must
  // be rejected by name, exactly like any other unknown version.
  std::string bytes = FileBytes(GoldenPath("golden_v3.repo"));
  ASSERT_GE(bytes.size(), 5u);
  bytes[4] = 2;
  const std::string path = TempPath("golden_v2.repo");
  WriteBytes(path, bytes);
  auto repo = LoadRepository(path);
  std::remove(path.c_str());
  ASSERT_FALSE(repo.ok());
  EXPECT_NE(repo.status().message().find("version"), std::string::npos);
}

TEST(GoldenCompatTest, V3ToV4ConversionIsBitIdenticalTopK) {
  // Load the golden v3, rewrite as v4, serve BOTH through real snapshots
  // and compare full top-k results bit for bit (set ids, scores, exact
  // flags) — the acceptance contract of the format migration.
  const std::string v3_path = GoldenPath("golden_v3.repo");
  const std::string v4_path = TempPath("golden_converted.repo");
  {
    auto repo = LoadRepository(v3_path);
    ASSERT_TRUE(repo.ok());
    ASSERT_TRUE(SaveRepositoryV4(repo.value().dict, repo.value().sets,
                                 &repo.value().store, v4_path)
                    .ok());
  }
  auto v3_snap = serve::Snapshot::Load(v3_path);
  ASSERT_TRUE(v3_snap.ok()) << v3_snap.status().ToString();
  auto v4_snap = serve::Snapshot::Load(v4_path);
  ASSERT_TRUE(v4_snap.ok()) << v4_snap.status().ToString();
  EXPECT_FALSE(v3_snap.value()->mmap_backed());
  EXPECT_TRUE(v4_snap.value()->mmap_backed());

  core::KoiosSearcher v3_searcher(&v3_snap.value()->sets(),
                                  v3_snap.value()->index());
  core::KoiosSearcher v4_searcher(&v4_snap.value()->sets(),
                                  v4_snap.value()->index());
  core::SearchParams params;
  params.k = 3;
  for (const Score alpha : {0.5, 0.7, 0.9}) {
    params.alpha = alpha;
    const Fixture f = MakeFixture();
    for (SetId s = 0; s < f.sets.size(); ++s) {
      const auto tokens = f.sets.Tokens(s);
      const std::vector<TokenId> query(tokens.begin(), tokens.end());
      const auto v3_result = v3_searcher.Search(query, params);
      const auto v4_result = v4_searcher.Search(query, params);
      ASSERT_EQ(v3_result.topk.size(), v4_result.topk.size());
      for (size_t i = 0; i < v3_result.topk.size(); ++i) {
        EXPECT_EQ(v3_result.topk[i].set, v4_result.topk[i].set);
        EXPECT_EQ(v3_result.topk[i].score, v4_result.topk[i].score);
        EXPECT_EQ(v3_result.topk[i].exact, v4_result.topk[i].exact);
      }
    }
  }
  std::remove(v4_path.c_str());
}

// -------------------------------------------- zero-requantization (perf) --

TEST(ZeroRequantizationTest, V4LoadPerformsNoQuantizationWork) {
  Fixture f = MakeFixture();
  const std::string v4_path = TempPath("v4_requant.repo");
  const std::string v3_path = TempPath("v3_requant.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, v4_path).ok());
  ASSERT_TRUE(SaveRepository(f.dict, f.sets, &f.store, v3_path).ok());

  // v4 snapshot: the int8 tier comes straight from the file — quantized,
  // borrowed, ZERO Finalize() runs.
  auto v4_snap = serve::Snapshot::Load(v4_path);
  ASSERT_TRUE(v4_snap.ok()) << v4_snap.status().ToString();
  const auto& v4_store = v4_snap.value()->store();
  EXPECT_TRUE(v4_store.quantized());
  EXPECT_EQ(v4_store.finalize_runs(), 0u)
      << "v4 load must not re-run quantization";

  // v3 pays the latent cost this format removes: its loader re-runs
  // Finalize() over every row (finalize_runs() == 1).
  auto v3_snap = serve::Snapshot::Load(v3_path);
  ASSERT_TRUE(v3_snap.ok());
  EXPECT_TRUE(v3_snap.value()->store().quantized());
  EXPECT_EQ(v3_snap.value()->store().finalize_runs(), 1u);

  // And the stored tier is IDENTICAL to what Finalize() produced on the
  // original: codes, scales, offsets, code sums, and every quantized
  // kernel score.
  ASSERT_EQ(v4_store.QuantizedCodes().size(), f.store.QuantizedCodes().size());
  EXPECT_TRUE(std::equal(v4_store.QuantizedCodes().begin(),
                         v4_store.QuantizedCodes().end(),
                         f.store.QuantizedCodes().begin()));
  EXPECT_TRUE(std::equal(v4_store.QuantizedScales().begin(),
                         v4_store.QuantizedScales().end(),
                         f.store.QuantizedScales().begin()));
  EXPECT_TRUE(std::equal(v4_store.QuantizedOffsets().begin(),
                         v4_store.QuantizedOffsets().end(),
                         f.store.QuantizedOffsets().begin()));
  EXPECT_TRUE(std::equal(v4_store.QuantizedSums().begin(),
                         v4_store.QuantizedSums().end(),
                         f.store.QuantizedSums().begin()));
  for (TokenId a = 0; a < 10; ++a) {
    for (TokenId b = 0; b < 10; ++b) {
      EXPECT_EQ(v4_store.CosineQuantized(a, b), f.store.CosineQuantized(a, b));
    }
  }
  std::remove(v4_path.c_str());
  std::remove(v3_path.c_str());
}

// ----------------------------------------------------- borrowed contract --

TEST(BorrowedStorageTest, FinalizeOnBorrowedStoreWithoutTierBuildsOwned) {
  // A v4 file written from an UNFINALIZED store carries no tier; a serving
  // path that wants int8 can still Finalize() — the codes land in owned
  // arrays over the borrowed rows.
  Fixture f = MakeFixture();
  embedding::EmbeddingStore unfinalized(4);
  for (TokenId t = 0; t < 10; ++t) {
    if (!f.store.Has(t)) continue;
    unfinalized.AddNormalized(t, f.store.VectorOf(t));
  }
  const std::string path = TempPath("v4_unfinalized.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &unfinalized, path).ok());
  auto view = MmapRepositoryView::Open(path);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view.value()->has_quantized());
  auto store = view.value()->BorrowEmbeddings();
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store.value().quantized());
  store.value().Finalize();
  EXPECT_TRUE(store.value().quantized());
  EXPECT_EQ(store.value().finalize_runs(), 1u);
  for (TokenId a = 0; a < 10; ++a) {
    for (TokenId b = 0; b < 10; ++b) {
      EXPECT_EQ(store.value().CosineQuantized(a, b),
                f.store.CosineQuantized(a, b));
    }
  }
  std::remove(path.c_str());
}

TEST(BorrowedStorageTest, VocabularySectionSkipsCorpusScan) {
  // The snapshot built over a v4 file must expose the same index
  // vocabulary the stream path derives by scanning the corpus; spot-check
  // through a query that hits the one token (6) with no embedding row.
  Fixture f = MakeFixture();
  const std::string path = TempPath("v4_vocab.repo");
  ASSERT_TRUE(SaveRepositoryV4(f.dict, f.sets, &f.store, path).ok());
  auto snap = serve::Snapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap.value()->mmap_backed());
  core::KoiosSearcher searcher(&snap.value()->sets(), snap.value()->index());
  core::SearchParams params;
  params.k = 2;
  params.alpha = 0.6;
  const auto result = searcher.Search(std::vector<TokenId>{5, 6}, params);
  EXPECT_FALSE(result.topk.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios::io
