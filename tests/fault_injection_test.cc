// Chaos tests (ISSUE 6): with failpoints armed across the io, thread-pool,
// cursor-cache, and snapshot-swap seams, the system must degrade
// GRACEFULLY — successful queries stay bit-identical to the serial
// reference, failures surface as clean Statuses (never crashes, never
// partial results), a failed save or reload leaves the previous artifact
// serving, and the overload governor rejects with actionable retry hints.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/io/repository_v4.h"
#include "koios/io/serialization.h"
#include "koios/net/client.h"
#include "koios/net/engine_slot.h"
#include "koios/net/repository_watcher.h"
#include "koios/net/server.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/util/fault_injector.h"
#include "test_util.h"

namespace koios {
namespace {

using core::KoiosSearcher;
using core::SearchParams;
using core::SearchResult;
using serve::EngineCounters;
using serve::EngineOptions;
using serve::QueryEngine;
using serve::Snapshot;
using util::FaultInjector;
using util::FaultSpec;
using util::ScopedFault;

// ----------------------------------------------------------- the injector --

TEST(FaultInjectorTest, DisarmedEvaluatesToNoop) {
  EXPECT_FALSE(FaultInjector::AnyArmed());
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("never.armed"));
  const auto stats = FaultInjector::Instance().Stats("never.armed");
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.fires, 0u);
}

TEST(FaultInjectorTest, FailNthFiresExactlyOnThatHit) {
  FaultSpec spec;
  spec.fail_on_hit = 3;
  ScopedFault fault("test.nth", spec);
  EXPECT_TRUE(FaultInjector::AnyArmed());
  for (int hit = 1; hit <= 10; ++hit) {
    const bool fired = KOIOS_FAULTPOINT("test.nth");
    EXPECT_EQ(fired, hit == 3) << "hit " << hit;
  }
  const auto stats = FaultInjector::Instance().Stats("test.nth");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST(FaultInjectorTest, ProbabilityScheduleIsSeedDeterministic) {
  auto decisions = [](uint64_t seed) {
    FaultSpec spec;
    spec.fail_probability = 0.5;
    spec.seed = seed;
    ScopedFault fault("test.prob", spec);
    std::vector<bool> out;
    for (int i = 0; i < 200; ++i) out.push_back(KOIOS_FAULTPOINT("test.prob"));
    return out;
  };
  const auto a = decisions(42);
  const auto b = decisions(42);
  EXPECT_EQ(a, b);  // same seed: the schedule replays identically
  const auto c = decisions(43);
  EXPECT_NE(a, c);
  size_t fires = 0;
  for (const bool d : a) fires += d;
  EXPECT_GT(fires, 50u);  // p=0.5 over 200 hits: nowhere near 0 or 200
  EXPECT_LT(fires, 150u);
}

TEST(FaultInjectorTest, LatencyScheduleSleepsWithoutFiring) {
  FaultSpec spec;
  spec.latency = std::chrono::milliseconds(30);
  ScopedFault fault("test.latency", spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(KOIOS_FAULTPOINT("test.latency"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_EQ(FaultInjector::Instance().Stats("test.latency").fires, 0u);
}

TEST(FaultInjectorTest, ScopedFaultDisarmsOnScopeExit) {
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("test.scoped", spec);
    EXPECT_TRUE(FaultInjector::AnyArmed());
  }
  EXPECT_FALSE(FaultInjector::AnyArmed());
  EXPECT_FALSE(FaultInjector::Instance().Evaluate("test.scoped"));
}

// --------------------------------------------------------------- io seams --

/// Writes a small complete repository file; returns its path.
std::string SaveTinyRepository(const std::string& filename) {
  text::Dictionary dict;
  for (TokenId t = 0; t < 10; ++t) dict.Intern("tok" + std::to_string(t));
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0, 3, 9});
  sets.AddSet(std::vector<TokenId>{1, 2});
  embedding::EmbeddingStore store(2);
  for (TokenId t = 0; t < 10; ++t) {
    store.Add(t, std::vector<float>{static_cast<float>(t) + 1.0f, 1.0f});
  }
  const std::string path = ::testing::TempDir() + "/" + filename;
  EXPECT_TRUE(io::SaveRepository(dict, sets, &store, path).ok());
  return path;
}

TEST(IoFaultTest, ReadFailureAtEverySiteReturnsCleanStatus) {
  // Sweep a one-shot read fault over EVERY ReadPod site of a full load:
  // each position must yield an error Status (clean unwind, no crash, no
  // partial repository), and once n exceeds the number of reads the load
  // succeeds again — proving the sweep covered every site.
  const std::string path = SaveTinyRepository("koios_fault_read.bin");
  size_t failures = 0;
  uint64_t first_success = 0;
  for (uint64_t n = 1; n <= 100; ++n) {
    FaultSpec spec;
    spec.fail_on_hit = n;
    ScopedFault fault("io.read", spec);
    auto repo = io::LoadRepository(path);
    if (repo.ok()) {
      if (first_success == 0) first_success = n;
      EXPECT_TRUE(repo.value().has_embeddings);
    } else {
      EXPECT_EQ(first_success, 0u)
          << "load failed at n=" << n << " after succeeding earlier";
      ++failures;
    }
  }
  EXPECT_GT(failures, 10u);        // the format has many read sites
  EXPECT_GT(first_success, 0u);    // and the sweep went past the last one
  EXPECT_TRUE(io::LoadRepository(path).ok());  // disarmed: unaffected
  std::remove(path.c_str());
}

TEST(IoFaultTest, FailedSaveLeavesPreviousFileIntact) {
  const std::string path = SaveTinyRepository("koios_fault_save.bin");
  auto before = io::LoadRepository(path);
  ASSERT_TRUE(before.ok());

  // A save that dies mid-write must fail with a Status, leave the
  // PREVIOUS repository loadable, and clean up its temp file.
  text::Dictionary dict;
  dict.Intern("other");
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0});
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("io.save.write", spec);
    auto status = io::SaveRepository(dict, sets, nullptr, path);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("io.save.write"), std::string::npos);
  }
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(static_cast<bool>(tmp)) << "temp file left behind";
  auto after = io::LoadRepository(path);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().dict.size(), before.value().dict.size());
  EXPECT_EQ(after.value().sets.size(), before.value().sets.size());

  // Disarmed, the same save succeeds and replaces the file atomically.
  ASSERT_TRUE(io::SaveRepository(dict, sets, nullptr, path).ok());
  auto replaced = io::LoadRepository(path);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value().dict.size(), 1u);
  std::remove(path.c_str());
}

/// Saves the SaveTinyRepository corpus in v4 form; returns its path.
std::string SaveTinyRepositoryV4(const std::string& filename) {
  text::Dictionary dict;
  for (TokenId t = 0; t < 10; ++t) dict.Intern("tok" + std::to_string(t));
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0, 3, 9});
  sets.AddSet(std::vector<TokenId>{1, 2});
  embedding::EmbeddingStore store(2);
  for (TokenId t = 0; t < 10; ++t) {
    store.Add(t, std::vector<float>{static_cast<float>(t) + 1.0f, 1.0f});
  }
  store.Finalize();
  const std::string path = ::testing::TempDir() + "/" + filename;
  EXPECT_TRUE(io::SaveRepositoryV4(dict, sets, &store, path).ok());
  return path;
}

TEST(IoFaultTest, MmapEstablishmentFailureReturnsCleanStatus) {
  // "io.mmap" models open/fstat/mmap failure (fd exhaustion, EPERM). Both
  // the raw view and the full snapshot path must surface it as a Status.
  const std::string path = SaveTinyRepositoryV4("koios_fault_mmap.bin");
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("io.mmap", spec);
    auto view = io::MmapRepositoryView::Open(path);
    ASSERT_FALSE(view.ok());
    EXPECT_NE(view.status().message().find("io.mmap"), std::string::npos);
  }
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("io.mmap", spec);
    // Snapshot::Load peeks the version first (one mmap-free read), then
    // maps; the injected failure must come back through the serve path too.
    EXPECT_FALSE(Snapshot::Load(path).ok());
  }
  EXPECT_TRUE(io::MmapRepositoryView::Open(path).ok());  // disarmed
  std::remove(path.c_str());
}

TEST(IoFaultTest, V4ValidationFailureAtEverySiteReturnsCleanStatus) {
  // Sweep a one-shot fault over every "io.v4.validate" site of a fully
  // EAGER load (structural pass + one CRC check per section): each must
  // unwind to a clean error, and past the last site loads succeed again.
  const std::string path = SaveTinyRepositoryV4("koios_fault_v4val.bin");
  size_t failures = 0;
  uint64_t first_success = 0;
  for (uint64_t n = 1; n <= 30; ++n) {
    FaultSpec spec;
    spec.fail_on_hit = n;
    ScopedFault fault("io.v4.validate", spec);
    auto view =
        io::MmapRepositoryView::Open(path, io::MmapOptions{.verify = true});
    if (view.ok()) {
      if (first_success == 0) first_success = n;
    } else {
      EXPECT_EQ(first_success, 0u)
          << "validate failed at n=" << n << " after succeeding earlier";
      EXPECT_NE(view.status().message().find("io.v4.validate"),
                std::string::npos);
      ++failures;
    }
  }
  EXPECT_GT(failures, 5u);       // structural pass + per-section CRCs
  EXPECT_GT(first_success, 0u);  // sweep covered every site
  std::remove(path.c_str());
}

// ------------------------------------------------------------ serve seams --

TEST(ServeFaultTest, QueriesStayExactUnderCursorAndDispatchChaos) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 20, 66001);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.75;
  params.num_threads = 1;
  std::vector<std::vector<TokenId>> queries;
  for (SetId id = 0; id < 16; ++id) {
    const auto tokens = w.corpus.sets.Tokens(id * 5);
    queries.emplace_back(tokens.begin(), tokens.end());
  }
  // Chaos window FIRST, on a cold cursor cache (so publishes actually
  // happen): a third of worker dispatches run late, and EVERY cursor
  // publish is dropped (the cache never retains anything — the documented
  // worst case, equivalent to immediate eviction). Results must not move
  // by a bit versus the serial reference computed afterwards — cursor
  // builds are deterministic, so cache state cannot change results.
  std::vector<QueryEngine::Result> results;
  uint64_t publish_drops = 0;
  {
    FaultSpec slow;
    slow.latency = std::chrono::milliseconds(2);
    slow.latency_probability = 0.34;
    slow.seed = 7;
    ScopedFault dispatch_fault("threadpool.dispatch", slow);
    FaultSpec drop;
    drop.fail_probability = 1.0;
    ScopedFault publish_fault("cursor.publish", drop);

    EngineOptions options;
    options.num_threads = 4;
    QueryEngine engine(&w.corpus.sets, w.index.get(), options);
    std::vector<std::future<QueryEngine::Result>> futures;
    for (const auto& q : queries) futures.push_back(engine.Submit(q, params));
    for (auto& f : futures) results.push_back(f.get());
    publish_drops = FaultInjector::Instance().Stats("cursor.publish").fires;
  }
  EXPECT_GT(publish_drops, 0u);

  KoiosSearcher serial(&w.corpus.sets, w.index.get());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    const SearchResult want = serial.Search(queries[i], params);
    ASSERT_EQ(results[i].value().topk.size(), want.topk.size());
    for (size_t j = 0; j < want.topk.size(); ++j) {
      EXPECT_EQ(results[i].value().topk[j].set, want.topk[j].set);
      EXPECT_DOUBLE_EQ(results[i].value().topk[j].score, want.topk[j].score);
    }
  }
}

TEST(ServeFaultTest, QueueFullRejectionCarriesRetryHint) {
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 66002);
  SearchParams params;
  params.k = 3;
  params.alpha = 0.8;
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue = 0;  // one running query saturates the engine
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  // Hold the only worker: its dispatch sleeps long enough for the second
  // Submit to deterministically find the engine saturated.
  FaultSpec slow;
  slow.latency = std::chrono::milliseconds(150);
  ScopedFault dispatch_fault("threadpool.dispatch", slow);

  const auto tokens = w.corpus.sets.Tokens(0);
  const std::vector<TokenId> query(tokens.begin(), tokens.end());
  auto running = engine.Submit(query, params);
  auto rejected = engine.Submit(query, params);
  QueryEngine::Result r = rejected.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.status().has_retry_after());
  EXPECT_GE(r.status().retry_after_ms(), 1);
  ASSERT_TRUE(running.get().ok());
  EXPECT_EQ(engine.counters().rejected_queue_full, 1u);
}

TEST(ServeFaultTest, AdmissionFailsFastWhenWaitExceedsDeadline) {
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 66003);
  SearchParams params;
  params.k = 3;
  params.alpha = 0.8;
  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  const auto tokens = w.corpus.sets.Tokens(1);
  const std::vector<TokenId> query(tokens.begin(), tokens.end());
  {
    // Build a LARGE deterministic EWMA: the first query's cursor builds
    // (cold cache) each publish through a 25 ms latency fault, so its
    // recorded service time — the EWMA seed — is at least 25 ms.
    FaultSpec slow_publish;
    slow_publish.latency = std::chrono::milliseconds(25);
    ScopedFault publish_fault("cursor.publish", slow_publish);
    ASSERT_TRUE(engine.Submit(query, params).get().ok());
  }

  // Occupy the single worker so the probe has to queue...
  FaultSpec slow;
  slow.latency = std::chrono::milliseconds(200);
  ScopedFault dispatch_fault("threadpool.dispatch", slow);
  auto filler = engine.Submit(query, params);
  // ...and submit a probe whose 1 ms budget is far below the >=25 ms
  // estimated wait: the governor must reject it AT ADMISSION.
  auto probe = engine.Submit(query, params, std::chrono::milliseconds(1));
  QueryEngine::Result r = probe.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.status().has_retry_after());
  EXPECT_GE(r.status().retry_after_ms(), 1);
  ASSERT_TRUE(filler.get().ok());
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.rejected_wait_exceeds_deadline, 1u);
  EXPECT_EQ(counters.completed, 2u);  // the probe never ran
}

TEST(ServeFaultTest, TrySwapKeepsServingOnEveryFailurePath) {
  const std::string good_path = SaveTinyRepository("koios_fault_swap_good.bin");
  auto snapshot = Snapshot::Load(good_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::shared_ptr<const Snapshot> snap1 = snapshot.value();

  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(snap1, options);
  SearchParams params;
  params.k = 2;
  params.alpha = 0.7;
  const auto tokens = snap1->sets().Tokens(0);
  const std::vector<TokenId> query(tokens.begin(), tokens.end());
  const SearchResult want = engine.Submit(query, params).get().value();

  // 1. Missing file.
  auto missing = engine.TrySwapFromRepository("/nonexistent/koios.bin");
  EXPECT_EQ(missing.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(engine.snapshot(), snap1);

  // 2. Corrupt file (a truncated copy of a valid repository).
  const std::string corrupt_path =
      ::testing::TempDir() + "/koios_fault_swap_corrupt.bin";
  {
    std::ifstream in(good_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(corrupt_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto corrupt = engine.TrySwapFromRepository(corrupt_path);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(engine.snapshot(), snap1);

  // 3. State build blows up after a SUCCESSFUL load.
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("engine.swap.build", spec);
    auto build = engine.TrySwapFromRepository(good_path);
    EXPECT_EQ(build.code(), util::StatusCode::kInternal);
    EXPECT_EQ(engine.snapshot(), snap1);
  }

  // Through all three failures the engine kept answering, identically.
  QueryEngine::Result still = engine.Submit(query, params).get();
  ASSERT_TRUE(still.ok());
  ASSERT_EQ(still.value().topk.size(), want.topk.size());
  for (size_t i = 0; i < want.topk.size(); ++i) {
    EXPECT_EQ(still.value().topk[i].set, want.topk[i].set);
  }

  // 4. A valid swap goes through and is counted.
  auto ok = engine.TrySwapFromRepository(good_path);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_NE(engine.snapshot(), snap1);
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.swap_failures, 3u);
  EXPECT_EQ(counters.swaps_completed, 1u);

  std::remove(good_path.c_str());
  std::remove(corrupt_path.c_str());
}

TEST(ServeFaultTest, TrySwapOnCorruptV4KeepsServingOldSnapshot) {
  // The nastiest corruption class: a bit flip inside a v4 BULK arena,
  // which lazy validation deliberately skips. TrySwapFromRepository
  // forces eager verification, so the swap must fail cleanly and the old
  // snapshot must keep serving — corruption never goes live.
  const std::string v3_path = SaveTinyRepository("koios_fault_v4swap_old.bin");
  const std::string v4_path =
      SaveTinyRepositoryV4("koios_fault_v4swap_new.bin");

  auto snapshot = Snapshot::Load(v3_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::shared_ptr<const Snapshot> snap1 = snapshot.value();
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(snap1, options);
  SearchParams params;
  params.k = 2;
  params.alpha = 0.7;
  const auto tokens = snap1->sets().Tokens(0);
  const std::vector<TokenId> query(tokens.begin(), tokens.end());
  const SearchResult want = engine.Submit(query, params).get().value();

  // Flip one bit in the middle of the set-token arena.
  const std::string corrupt_path =
      ::testing::TempDir() + "/koios_fault_v4swap_corrupt.bin";
  {
    std::ifstream in(v4_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    io::V4Header header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    std::vector<io::SectionEntry> table(header.section_count);
    std::memcpy(table.data(), bytes.data() + sizeof(header),
                table.size() * sizeof(io::SectionEntry));
    bool flipped = false;
    for (const io::SectionEntry& e : table) {
      if (e.kind == io::kSetTokens) {
        bytes[e.offset + e.length / 2] ^= 0x10;
        flipped = true;
      }
    }
    ASSERT_TRUE(flipped);
    // Sanity: LAZY open would have adopted this silently...
    std::ofstream out(corrupt_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  {
    auto lazy = io::MmapRepositoryView::Open(corrupt_path);
    ASSERT_TRUE(lazy.ok());
    EXPECT_TRUE(lazy.value()->BorrowDictionary().ok());
  }
  // ...but the live swap path must reject it.
  auto corrupt = engine.TrySwapFromRepository(corrupt_path);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(engine.snapshot(), snap1);

  // The engine still answers, identically, then swaps to the GOOD v4.
  QueryEngine::Result still = engine.Submit(query, params).get();
  ASSERT_TRUE(still.ok());
  ASSERT_EQ(still.value().topk.size(), want.topk.size());
  for (size_t i = 0; i < want.topk.size(); ++i) {
    EXPECT_EQ(still.value().topk[i].set, want.topk[i].set);
    EXPECT_EQ(still.value().topk[i].score, want.topk[i].score);
  }
  auto ok = engine.TrySwapFromRepository(v4_path);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_NE(engine.snapshot(), snap1);
  EXPECT_TRUE(engine.snapshot()->mmap_backed());

  std::remove(v3_path.c_str());
  std::remove(v4_path.c_str());
  std::remove(corrupt_path.c_str());
}

// ------------------------------------------------------------- net seams --
// ISSUE 8 satellite: the network edge owns four faultpoints — net.accept,
// net.read, net.write, watch.poll. With each armed (one-shot and
// probabilistic), failures must cost at most ONE connection / ONE poll:
// the server keeps answering, successful responses stay bit-identical to
// the serial reference, and a failed poll never swaps a snapshot.

struct NetChaosRig {
  testing::RandomWorkload workload;
  std::unique_ptr<KoiosSearcher> serial;
  net::EngineSlot slot;
  std::unique_ptr<net::Server> server;

  std::vector<TokenId> QueryFor(size_t i) const {
    const auto tokens = workload.corpus.sets.Tokens(
        static_cast<SetId>((i * 7) % workload.corpus.sets.size()));
    return {tokens.begin(), tokens.end()};
  }
};

// Heap-allocated: the rig is self-referential (engine and server borrow
// the workload and slot by address), so it must never move.
std::unique_ptr<NetChaosRig> MakeNetChaosRig(uint64_t seed) {
  auto rig_owner = std::make_unique<NetChaosRig>();
  NetChaosRig& rig = *rig_owner;
  rig.workload = testing::MakeRandomWorkload(100, 400, 5, 18, seed);
  rig.serial = std::make_unique<KoiosSearcher>(&rig.workload.corpus.sets,
                                               rig.workload.index.get());
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  rig.slot.Set(std::make_shared<QueryEngine>(
      &rig.workload.corpus.sets, rig.workload.index.get(), engine_options));
  rig.server = std::make_unique<net::Server>(&rig.slot, nullptr,
                                             net::ServerOptions{});
  EXPECT_TRUE(rig.server->Start().ok());
  return rig_owner;
}

void ExpectExactOverTheWire(NetChaosRig& rig, net::BlockingClient& client,
                            size_t i) {
  const std::vector<TokenId> query = rig.QueryFor(i);
  auto got = client.Search(query, 5, 0.8, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  SearchParams params;
  params.k = 5;
  params.num_threads = 1;
  const SearchResult want = rig.serial->Search(query, params);
  ASSERT_EQ(got.value().size(), want.topk.size());
  for (size_t e = 0; e < want.topk.size(); ++e) {
    EXPECT_EQ(got.value()[e].set, want.topk[e].set);
    EXPECT_EQ(got.value()[e].score, want.topk[e].score);
  }
}

TEST(NetFaultTest, OneShotAcceptFaultCostsOneHandshakeOnly) {
  std::unique_ptr<NetChaosRig> rig_owner = MakeNetChaosRig(31001);
  NetChaosRig& rig = *rig_owner;
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("net.accept", spec);
    // The TCP connect lands in the kernel; the server-side accept fires
    // the fault and closes the fresh connection — our first IO fails.
    auto doomed = net::BlockingClient::Connect("127.0.0.1",
                                               rig.server->port());
    if (doomed.ok()) {
      EXPECT_FALSE(doomed.value().Ping().ok());
    }
    // One-shot: the NEXT accept (still armed) succeeds.
    auto next = net::BlockingClient::Connect("127.0.0.1",
                                             rig.server->port());
    ASSERT_TRUE(next.ok());
    EXPECT_TRUE(next.value().Ping().ok());
    ExpectExactOverTheWire(rig, next.value(), 0);
  }
  EXPECT_GE(rig.server->stats().accept_errors, 1u);
}

TEST(NetFaultTest, OneShotReadFaultShedsOneConnection) {
  std::unique_ptr<NetChaosRig> rig_owner = MakeNetChaosRig(31002);
  NetChaosRig& rig = *rig_owner;
  auto victim = net::BlockingClient::Connect("127.0.0.1",
                                             rig.server->port());
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(victim.value().Ping().ok());  // healthy before the fault
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("net.read", spec);
    // The next server-side read of this connection dies; the ping cannot
    // complete, but it must fail with a clean Status, not hang.
    EXPECT_FALSE(victim.value().Ping().ok());
  }
  EXPECT_GE(rig.server->stats().read_errors, 1u);
  auto fresh = net::BlockingClient::Connect("127.0.0.1", rig.server->port());
  ASSERT_TRUE(fresh.ok()) << "server died after a read fault";
  ExpectExactOverTheWire(rig, fresh.value(), 1);
}

TEST(NetFaultTest, OneShotWriteFaultShedsOneConnection) {
  std::unique_ptr<NetChaosRig> rig_owner = MakeNetChaosRig(31003);
  NetChaosRig& rig = *rig_owner;
  auto victim = net::BlockingClient::Connect("127.0.0.1",
                                             rig.server->port());
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(victim.value().Ping().ok());
  {
    FaultSpec spec;
    spec.fail_on_hit = 1;
    ScopedFault fault("net.write", spec);
    // The response write fails server-side; this connection is dead but
    // the failure is contained to it.
    EXPECT_FALSE(victim.value().Search(rig.QueryFor(2), 5, 0.8, 0).ok());
  }
  EXPECT_GE(rig.server->stats().write_errors, 1u);
  auto fresh = net::BlockingClient::Connect("127.0.0.1", rig.server->port());
  ASSERT_TRUE(fresh.ok()) << "server died after a write fault";
  ExpectExactOverTheWire(rig, fresh.value(), 3);
}

TEST(NetFaultTest, ProbabilisticIoChaosNeverCorruptsAnAnswer) {
  // Seeded random read+write failures across many short-lived clients:
  // plenty of connections die mid-flight, but every answer that DOES come
  // back is bit-identical to the serial reference, and the server is
  // still standing (and exact) once the chaos stops.
  std::unique_ptr<NetChaosRig> rig_owner = MakeNetChaosRig(31004);
  NetChaosRig& rig = *rig_owner;
  size_t answered = 0;
  {
    FaultSpec read_spec;
    read_spec.fail_probability = 0.05;
    read_spec.seed = 91;
    ScopedFault read_fault("net.read", read_spec);
    FaultSpec write_spec;
    write_spec.fail_probability = 0.05;
    write_spec.seed = 92;
    ScopedFault write_fault("net.write", write_spec);

    for (size_t i = 0; i < 40; ++i) {
      auto client = net::BlockingClient::Connect("127.0.0.1",
                                                 rig.server->port());
      if (!client.ok()) continue;
      const std::vector<TokenId> query = rig.QueryFor(i);
      auto got = client.value().Search(query, 5, 0.8, 0);
      if (!got.ok()) continue;  // a shed connection, not a wrong answer
      ++answered;
      SearchParams params;
      params.k = 5;
      params.num_threads = 1;
      const SearchResult want = rig.serial->Search(query, params);
      ASSERT_EQ(got.value().size(), want.topk.size()) << "query " << i;
      for (size_t e = 0; e < want.topk.size(); ++e) {
        EXPECT_EQ(got.value()[e].set, want.topk[e].set) << "query " << i;
        EXPECT_EQ(got.value()[e].score, want.topk[e].score) << "query " << i;
      }
    }
  }
  EXPECT_GT(answered, 0u) << "p=0.05 chaos should not kill every request";
  auto recovered = net::BlockingClient::Connect("127.0.0.1",
                                                rig.server->port());
  ASSERT_TRUE(recovered.ok()) << "server did not survive the chaos run";
  ExpectExactOverTheWire(rig, recovered.value(), 5);
}

TEST(NetFaultTest, WatchPollFaultSweepNeverSwaps) {
  // One-shot at every position AND a p=1.0 run: a failed poll only ever
  // increments poll_failures — the pending change on disk must not load
  // through a faulted poll, at any position in the schedule.
  const std::string path = ::testing::TempDir() + "/koios_net_watch.bin";
  {
    auto w = testing::MakeRandomWorkload(40, 300, 5, 12, 31005);
    text::Dictionary dict;
    for (TokenId t = 0; t < 300; ++t) dict.Intern("tok" + std::to_string(t));
    ASSERT_TRUE(io::SaveRepositoryV4(dict, w.corpus.sets, &w.model->store(),
                                     path)
                    .ok());
  }
  net::EngineSlot slot;
  net::WatcherOptions options;
  options.engine.num_threads = 1;
  net::RepositoryWatcher watcher(path, &slot, nullptr, options);
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_NE(slot.Get(), nullptr);

  // Push a change that will be pending throughout the sweep.
  {
    auto w = testing::MakeRandomWorkload(70, 300, 5, 12, 31006);
    text::Dictionary dict;
    for (TokenId t = 0; t < 300; ++t) dict.Intern("tok" + std::to_string(t));
    ASSERT_TRUE(io::SaveRepositoryV4(dict, w.corpus.sets, &w.model->store(),
                                     path)
                    .ok());
  }

  for (uint64_t n = 1; n <= 4; ++n) {
    FaultSpec spec;
    spec.fail_on_hit = n;
    ScopedFault fault("watch.poll", spec);
    for (uint64_t i = 1; i < n; ++i) watcher.PollOnce();  // burn hits
    const util::Status faulted = watcher.PollOnce();      // hit n fires
    EXPECT_FALSE(faulted.ok());
    EXPECT_NE(faulted.ToString().find("watch.poll"), std::string::npos);
  }
  {
    FaultSpec spec;
    spec.fail_probability = 1.0;
    ScopedFault fault("watch.poll", spec);
    for (int i = 0; i < 6; ++i) EXPECT_FALSE(watcher.PollOnce().ok());
  }
  EXPECT_GE(watcher.stats().poll_failures, 10u);

  // Between the one-shot windows some polls ran clean, so the change may
  // have legitimately landed — what the sweep pins down is that no FAULTED
  // poll swaps: failures and swaps must account for disjoint polls.
  const net::WatcherStats stats = watcher.stats();
  EXPECT_LE(stats.swaps_completed, 1u);
  EXPECT_GE(stats.polls, stats.poll_failures + stats.swaps_completed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios
