#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "koios/baselines/silkmoth.h"
#include "koios/core/searcher.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/text/dictionary.h"
#include "koios/util/rng.h"
#include "test_util.h"

namespace koios::baselines {
namespace {

// A small string corpus with controlled typo structure so q-gram Jaccard
// has meaningful matches.
struct StringWorkload {
  text::Dictionary dict;
  index::SetCollection sets;
  std::vector<TokenId> vocabulary;
};

StringWorkload MakeStringWorkload(uint64_t seed, size_t num_sets = 60) {
  StringWorkload w;
  util::Rng rng(seed);
  // Base words plus typo variants (drop/duplicate last letter).
  std::vector<std::string> base = {
      "charleston", "columbia",  "lexington", "sacramento", "minnesota",
      "appleton",   "blaine",    "seattle",   "portland",   "richmond",
      "arlington",  "knoxville", "asheville", "greenville", "huntsville",
      "nashville",  "birmingham", "montgomery", "tallahassee", "gainesville"};
  std::vector<std::string> words = base;
  for (const auto& word : base) {
    words.push_back(word.substr(0, word.size() - 1));  // typo: drop last
    words.push_back(word + word.back());               // typo: double last
  }
  std::vector<TokenId> ids;
  for (const auto& word : words) ids.push_back(w.dict.Intern(word));

  for (size_t s = 0; s < num_sets; ++s) {
    const size_t size = 3 + rng.NextBounded(6);
    std::vector<TokenId> members;
    for (size_t i = 0; i < size; ++i) {
      members.push_back(ids[rng.NextBounded(ids.size())]);
    }
    w.sets.AddSet(members);
  }
  index::InvertedIndex inverted(w.sets);
  w.vocabulary = inverted.Vocabulary();
  return w;
}

TEST(SilkMothTest, SyntacticAndSemanticVariantsAgree) {
  // The prefix filter only changes *which token pairs are examined*, never
  // the result: both variants must return identical top-k thresholds.
  auto w = MakeStringWorkload(42);
  sim::JaccardQGramSimilarity jaccard(&w.dict, 3);
  SilkMothSearch silkmoth(&w.sets, &jaccard);
  std::vector<TokenId> query(w.sets.Tokens(0).begin(), w.sets.Tokens(0).end());
  SilkMothOptions syntactic, semantic;
  syntactic.variant = SilkMothVariant::kSyntactic;
  semantic.variant = SilkMothVariant::kSemantic;
  syntactic.k = semantic.k = 5;
  syntactic.alpha = semantic.alpha = 0.6;
  syntactic.theta = semantic.theta = 0.0;
  const auto r1 = silkmoth.Search(query, syntactic);
  const auto r2 = silkmoth.Search(query, semantic);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-9);
  }
}

TEST(SilkMothTest, AgreesWithKoiosOnJaccardSimilarity) {
  // Koios with the same Jaccard similarity through its generic index must
  // find the same top-k thresholds — the §VIII-B comparison setup.
  auto w = MakeStringWorkload(43);
  sim::JaccardQGramSimilarity jaccard(&w.dict, 3);
  SilkMothSearch silkmoth(&w.sets, &jaccard);
  sim::ExactKnnIndex index(w.vocabulary, &jaccard);
  core::KoiosSearcher koios(&w.sets, &index);

  std::vector<TokenId> query(w.sets.Tokens(5).begin(), w.sets.Tokens(5).end());
  const Score alpha = 0.6;
  core::SearchParams params;
  params.k = 5;
  params.alpha = alpha;
  const auto rk = koios.Search(query, params);

  SilkMothOptions options;
  options.k = 5;
  options.alpha = alpha;
  options.theta = rk.KthScore();  // the paper hands SilkMoth the true θ*k
  const auto rs = silkmoth.Search(query, options);
  ASSERT_EQ(rs.topk.size(), rk.topk.size());
  for (size_t i = 0; i < rk.topk.size(); ++i) {
    EXPECT_NEAR(rs.topk[i].score, rk.topk[i].score, 1e-6);
  }
}

TEST(SilkMothTest, ThresholdPrunesLowScoringSets) {
  auto w = MakeStringWorkload(44);
  sim::JaccardQGramSimilarity jaccard(&w.dict, 3);
  SilkMothSearch silkmoth(&w.sets, &jaccard);
  std::vector<TokenId> query(w.sets.Tokens(1).begin(), w.sets.Tokens(1).end());
  SilkMothOptions low, high;
  low.k = high.k = 20;
  low.alpha = high.alpha = 0.6;
  low.theta = 0.0;
  high.theta = static_cast<Score>(query.size());  // only near-duplicates
  const auto r_low = silkmoth.Search(query, low);
  const auto r_high = silkmoth.Search(query, high);
  EXPECT_GE(r_low.topk.size(), r_high.topk.size());
  for (const auto& e : r_high.topk) {
    EXPECT_GE(e.score, high.theta - 1e-9);
  }
  // The check filter saves verifications at the higher threshold.
  EXPECT_LE(r_high.stats.em_computed, r_low.stats.em_computed);
}

TEST(SilkMothTest, CheckFilterNeverCausesFalseNegatives) {
  auto w = MakeStringWorkload(45);
  sim::JaccardQGramSimilarity jaccard(&w.dict, 3);
  SilkMothSearch silkmoth(&w.sets, &jaccard);
  std::vector<TokenId> query(w.sets.Tokens(9).begin(), w.sets.Tokens(9).end());
  const Score alpha = 0.6;
  const auto oracle = testing::OracleRanking(w.sets, query, jaccard, alpha);
  SilkMothOptions options;
  options.k = 10;
  options.alpha = alpha;
  options.theta = 0.0;
  const auto result = silkmoth.Search(query, options);
  EXPECT_NEAR(result.KthScore(),
              testing::OracleKthScore(oracle, options.k), 1e-6);
}

TEST(SilkMothTest, SelfSetIsPerfectMatch) {
  auto w = MakeStringWorkload(46);
  sim::JaccardQGramSimilarity jaccard(&w.dict, 3);
  SilkMothSearch silkmoth(&w.sets, &jaccard);
  std::vector<TokenId> query(w.sets.Tokens(3).begin(), w.sets.Tokens(3).end());
  SilkMothOptions options;
  options.k = 1;
  options.alpha = 0.6;
  options.theta = 0.0;
  const auto result = silkmoth.Search(query, options);
  ASSERT_EQ(result.topk.size(), 1u);
  EXPECT_NEAR(result.topk[0].score, static_cast<Score>(query.size()), 1e-9);
}

}  // namespace
}  // namespace koios::baselines
