#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/embedding/synthetic_model.h"

namespace koios::embedding {
namespace {

// ---------------------------------------------------------- EmbeddingStore --

TEST(EmbeddingStoreTest, NormalizesOnInsert) {
  EmbeddingStore store(4);
  const std::vector<float> v = {3.0f, 0.0f, 4.0f, 0.0f};
  store.Add(0, v);
  const auto row = store.VectorOf(0);
  double norm = 0.0;
  for (float x : row) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-6);
  EXPECT_NEAR(row[0], 0.6, 1e-6);
  EXPECT_NEAR(row[2], 0.8, 1e-6);
}

TEST(EmbeddingStoreTest, CosineOfIdenticalVectorIsOne) {
  EmbeddingStore store(3);
  store.Add(5, std::vector<float>{1.0f, 2.0f, 3.0f});
  EXPECT_NEAR(store.Cosine(5, 5), 1.0, 1e-6);
}

TEST(EmbeddingStoreTest, CosineOfOrthogonalVectorsIsZero) {
  EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  store.Add(1, std::vector<float>{0.0f, 1.0f});
  EXPECT_NEAR(store.Cosine(0, 1), 0.0, 1e-6);
}

TEST(EmbeddingStoreTest, CosineOfOppositeVectorsIsMinusOne) {
  EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  store.Add(1, std::vector<float>{-1.0f, 0.0f});
  EXPECT_NEAR(store.Cosine(0, 1), -1.0, 1e-6);
}

TEST(EmbeddingStoreTest, OovTokensHaveZeroCosine) {
  EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  EXPECT_FALSE(store.Has(42));
  EXPECT_DOUBLE_EQ(store.Cosine(0, 42), 0.0);
  EXPECT_DOUBLE_EQ(store.Cosine(42, 42), 0.0);
}

TEST(EmbeddingStoreTest, SparseTokenIdsSupported) {
  EmbeddingStore store(2);
  store.Add(1000, std::vector<float>{1.0f, 1.0f});
  EXPECT_TRUE(store.Has(1000));
  EXPECT_FALSE(store.Has(999));
  EXPECT_EQ(store.covered(), 1u);
}

// --------------------------------------------------- SyntheticEmbeddingModel --

TEST(SyntheticModelTest, CoverageFractionRespected) {
  SyntheticModelSpec spec;
  spec.vocab_size = 2000;
  spec.coverage = 0.7;
  spec.seed = 5;
  SyntheticEmbeddingModel model(spec);
  const double actual =
      static_cast<double>(model.store().covered()) / spec.vocab_size;
  EXPECT_NEAR(actual, 0.7, 0.05);
}

TEST(SyntheticModelTest, ClusterSizesAverageOut) {
  SyntheticModelSpec spec;
  spec.vocab_size = 5000;
  spec.avg_cluster_size = 10.0;
  spec.seed = 6;
  SyntheticEmbeddingModel model(spec);
  const double avg =
      static_cast<double>(spec.vocab_size) / model.num_clusters();
  EXPECT_NEAR(avg, 10.0, 2.0);
}

TEST(SyntheticModelTest, IntraClusterSimilarityExceedsInterCluster) {
  SyntheticModelSpec spec;
  spec.vocab_size = 3000;
  spec.dim = 64;
  spec.avg_cluster_size = 8.0;
  spec.noise_sigma = 0.35;
  spec.coverage = 1.0;
  spec.seed = 7;
  SyntheticEmbeddingModel model(spec);

  double intra_sum = 0.0, inter_sum = 0.0;
  int intra_n = 0, inter_n = 0;
  for (TokenId a = 0; a + 1 < 1000; ++a) {
    const TokenId b = a + 1;
    const double c = model.store().Cosine(a, b);
    if (model.ClusterOf(a) == model.ClusterOf(b)) {
      intra_sum += c;
      ++intra_n;
    } else {
      inter_sum += c;
      ++inter_n;
    }
  }
  ASSERT_GT(intra_n, 50);
  ASSERT_GT(inter_n, 20);
  const double intra_avg = intra_sum / intra_n;
  const double inter_avg = inter_sum / inter_n;
  EXPECT_GT(intra_avg, 0.75);          // tight neighborhoods above α = 0.7
  EXPECT_LT(std::abs(inter_avg), 0.2);  // unrelated concepts near zero
}

TEST(SyntheticModelTest, DeterministicForSeed) {
  SyntheticModelSpec spec;
  spec.vocab_size = 500;
  spec.seed = 11;
  SyntheticEmbeddingModel m1(spec), m2(spec);
  EXPECT_EQ(m1.num_clusters(), m2.num_clusters());
  for (TokenId t = 0; t < 500; ++t) {
    ASSERT_EQ(m1.store().Has(t), m2.store().Has(t));
    if (m1.store().Has(t)) {
      ASSERT_NEAR(m1.store().Cosine(t, 0) - m2.store().Cosine(t, 0), 0.0, 0.0);
    }
  }
}

TEST(SyntheticModelTest, ZeroNoiseMakesClusterMembersIdentical) {
  SyntheticModelSpec spec;
  spec.vocab_size = 200;
  spec.noise_sigma = 0.0;
  spec.coverage = 1.0;
  spec.avg_cluster_size = 5.0;
  spec.seed = 13;
  SyntheticEmbeddingModel model(spec);
  for (TokenId a = 0; a + 1 < 200; ++a) {
    if (model.ClusterOf(a) == model.ClusterOf(a + 1)) {
      EXPECT_NEAR(model.store().Cosine(a, a + 1), 1.0, 1e-5);
    }
  }
}

}  // namespace
}  // namespace koios::embedding
