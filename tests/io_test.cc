// Tests for the persistence layer: .vec loading and binary repository
// serialization round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "koios/core/searcher.h"
#include "koios/embedding/vec_loader.h"
#include "koios/io/serialization.h"
#include "test_util.h"

namespace koios::io {
namespace {

// ------------------------------------------------------------- vec loader --

TEST(VecLoaderTest, ParsesWellFormedStream) {
  text::Dictionary dict;
  dict.Intern("apple");
  dict.Intern("banana");
  std::istringstream in(
      "3 4\n"
      "apple 1 0 0 0\n"
      "banana 0 1 0 0\n"
      "cherry 0 0 1 0\n");  // not in the dictionary: skipped
  embedding::VecLoadStats stats;
  auto store = embedding::LoadVecStream(in, dict, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(stats.file_words, 3u);
  EXPECT_EQ(stats.parsed_words, 3u);
  EXPECT_EQ(stats.matched_words, 2u);
  EXPECT_EQ(stats.dim, 4u);
  EXPECT_TRUE(store.value().Has(dict.Lookup("apple")));
  EXPECT_TRUE(store.value().Has(dict.Lookup("banana")));
  EXPECT_NEAR(store.value().Cosine(dict.Lookup("apple"), dict.Lookup("banana")),
              0.0, 1e-6);
}

TEST(VecLoaderTest, NormalizesVectors) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("1 2\nword 3 4\n");
  auto store = embedding::LoadVecStream(in, dict);
  ASSERT_TRUE(store.ok());
  const auto vec = store.value().VectorOf(dict.Lookup("word"));
  EXPECT_NEAR(vec[0], 0.6, 1e-6);
  EXPECT_NEAR(vec[1], 0.8, 1e-6);
}

TEST(VecLoaderTest, RejectsMalformedHeader) {
  text::Dictionary dict;
  std::istringstream in("not a header\n");
  auto store = embedding::LoadVecStream(in, dict);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(VecLoaderTest, RejectsShortRow) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("1 4\nword 1 2\n");
  auto store = embedding::LoadVecStream(in, dict);
  EXPECT_FALSE(store.ok());
}

TEST(VecLoaderTest, MissingFileIsNotFound) {
  text::Dictionary dict;
  auto store = embedding::LoadVecFile("/nonexistent/path.vec", dict);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), util::StatusCode::kNotFound);
}

TEST(VecLoaderTest, DuplicateRowsKeepFirst) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("2 2\nword 1 0\nword 0 1\n");
  auto store = embedding::LoadVecStream(in, dict);
  ASSERT_TRUE(store.ok());
  const auto vec = store.value().VectorOf(dict.Lookup("word"));
  EXPECT_NEAR(vec[0], 1.0, 1e-6);
}

// ---------------------------------------------------------- serialization --

TEST(SerializationTest, DictionaryRoundTrip) {
  text::Dictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta gamma");  // spaces survive binary framing
  dict.Intern("");
  std::stringstream buffer;
  ASSERT_TRUE(SaveDictionary(dict, buffer).ok());
  auto loaded = LoadDictionary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().TokenOf(1), "beta gamma");
  EXPECT_EQ(loaded.value().Lookup("alpha"), 0u);
}

TEST(SerializationTest, SetCollectionRoundTrip) {
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{3, 1, 2});
  sets.AddSet(std::vector<TokenId>{});
  sets.AddSet(std::vector<TokenId>{7});
  std::stringstream buffer;
  ASSERT_TRUE(SaveSetCollection(sets, buffer).ok());
  auto loaded = LoadSetCollection(buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().SetSize(0), 3u);
  EXPECT_EQ(loaded.value().SetSize(1), 0u);
  EXPECT_EQ(loaded.value().Tokens(2)[0], 7u);
}

TEST(SerializationTest, EmbeddingStoreRoundTrip) {
  embedding::EmbeddingStore store(3);
  store.Add(2, std::vector<float>{1.0f, 2.0f, 2.0f});
  store.Add(5, std::vector<float>{0.0f, 1.0f, 0.0f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 10, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().covered(), 2u);
  EXPECT_TRUE(loaded.value().Has(2));
  EXPECT_TRUE(loaded.value().Has(5));
  EXPECT_FALSE(loaded.value().Has(3));
  EXPECT_NEAR(loaded.value().Cosine(2, 5), store.Cosine(2, 5), 1e-6);
}

TEST(SerializationTest, QuantizedTierSurvivesRoundTrip) {
  // A Finalize()d store must come back quantized (the loader re-finalizes
  // from the persisted flag) with the int8 kernels agreeing exactly — the
  // codes are deterministic in the float rows.
  embedding::EmbeddingStore store(4);
  store.Add(0, std::vector<float>{0.9f, 0.1f, -0.3f, 0.2f});
  store.Add(1, std::vector<float>{-0.2f, 0.8f, 0.5f, 0.1f});
  store.Add(3, std::vector<float>{0.4f, -0.4f, 0.6f, -0.5f});
  store.Finalize();
  ASSERT_TRUE(store.quantized());

  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 10, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().quantized());
  EXPECT_GT(loaded.value().QuantizedMemoryUsageBytes(), 0u);
  // Both tiers agree with the saved store, pair by pair.
  const TokenId ids[] = {0, 1, 3};
  for (TokenId a : ids) {
    for (TokenId b : ids) {
      EXPECT_DOUBLE_EQ(loaded.value().Cosine(a, b), store.Cosine(a, b));
      EXPECT_DOUBLE_EQ(loaded.value().CosineQuantized(a, b),
                       store.CosineQuantized(a, b));
    }
  }
  // The Precision selector reads the restored tier (kInt8 must not fall
  // back to float rows).
  std::vector<TokenId> targets{0, 1, 3};
  std::vector<double> got(targets.size()), want(targets.size());
  loaded.value().CosineBatch(0, targets, std::span<double>(got),
                             embedding::Precision::kInt8);
  store.CosineBatch(0, targets, std::span<double>(want),
                    embedding::Precision::kInt8);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST(SerializationTest, UnquantizedStoreRoundTripsUnquantized) {
  embedding::EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 4, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().quantized());
}

TEST(SerializationTest, CorruptMagicRejected) {
  std::stringstream buffer;
  buffer << "garbage bytes here and more of them";
  EXPECT_FALSE(LoadDictionary(buffer).ok());
}

TEST(SerializationTest, RepositoryFileRoundTripAndSearch) {
  // Full integration: save a workload to disk, reload, search, and compare
  // against searching the original.
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 7001);
  text::Dictionary dict;
  for (TokenId t = 0; t < 300; ++t) dict.Intern("tok" + std::to_string(t));

  const std::string path = ::testing::TempDir() + "/koios_repo.bin";
  ASSERT_TRUE(SaveRepository(dict, w.corpus.sets, &w.model->store(), path).ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  ASSERT_TRUE(repo.value().has_embeddings);
  EXPECT_EQ(repo.value().sets.size(), w.corpus.sets.size());

  sim::CosineEmbeddingSimilarity sim(&repo.value().store);
  index::InvertedIndex inverted(repo.value().sets);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &sim);
  core::KoiosSearcher searcher(&repo.value().sets, &knn);
  core::KoiosSearcher original(&w.corpus.sets, w.index.get());
  core::SearchParams params;
  params.k = 5;
  params.alpha = 0.8;
  const auto q = w.corpus.sets.Tokens(3);
  const auto r1 = searcher.Search(q, params);
  const auto r2 = original.Search(q, params);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_EQ(r1.topk[i].set, r2.topk[i].set);
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RepositoryWithoutEmbeddings) {
  text::Dictionary dict;
  dict.Intern("a");
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0});
  const std::string path = ::testing::TempDir() + "/koios_repo_noemb.bin";
  ASSERT_TRUE(SaveRepository(dict, sets, nullptr, path).ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok());
  EXPECT_FALSE(repo.value().has_embeddings);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios::io
