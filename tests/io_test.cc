// Tests for the persistence layer: .vec loading and binary repository
// serialization round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "koios/core/searcher.h"
#include "koios/embedding/vec_loader.h"
#include "koios/io/serialization.h"
#include "test_util.h"

namespace koios::io {
namespace {

// ------------------------------------------------------------- vec loader --

TEST(VecLoaderTest, ParsesWellFormedStream) {
  text::Dictionary dict;
  dict.Intern("apple");
  dict.Intern("banana");
  std::istringstream in(
      "3 4\n"
      "apple 1 0 0 0\n"
      "banana 0 1 0 0\n"
      "cherry 0 0 1 0\n");  // not in the dictionary: skipped
  embedding::VecLoadStats stats;
  auto store = embedding::LoadVecStream(in, dict, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(stats.file_words, 3u);
  EXPECT_EQ(stats.parsed_words, 3u);
  EXPECT_EQ(stats.matched_words, 2u);
  EXPECT_EQ(stats.dim, 4u);
  EXPECT_TRUE(store.value().Has(dict.Lookup("apple")));
  EXPECT_TRUE(store.value().Has(dict.Lookup("banana")));
  EXPECT_NEAR(store.value().Cosine(dict.Lookup("apple"), dict.Lookup("banana")),
              0.0, 1e-6);
}

TEST(VecLoaderTest, NormalizesVectors) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("1 2\nword 3 4\n");
  auto store = embedding::LoadVecStream(in, dict);
  ASSERT_TRUE(store.ok());
  const auto vec = store.value().VectorOf(dict.Lookup("word"));
  EXPECT_NEAR(vec[0], 0.6, 1e-6);
  EXPECT_NEAR(vec[1], 0.8, 1e-6);
}

TEST(VecLoaderTest, RejectsMalformedHeader) {
  text::Dictionary dict;
  std::istringstream in("not a header\n");
  auto store = embedding::LoadVecStream(in, dict);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(VecLoaderTest, RejectsShortRow) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("1 4\nword 1 2\n");
  auto store = embedding::LoadVecStream(in, dict);
  EXPECT_FALSE(store.ok());
}

TEST(VecLoaderTest, MissingFileIsNotFound) {
  text::Dictionary dict;
  auto store = embedding::LoadVecFile("/nonexistent/path.vec", dict);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), util::StatusCode::kNotFound);
}

TEST(VecLoaderTest, DuplicateRowsKeepFirst) {
  text::Dictionary dict;
  dict.Intern("word");
  std::istringstream in("2 2\nword 1 0\nword 0 1\n");
  auto store = embedding::LoadVecStream(in, dict);
  ASSERT_TRUE(store.ok());
  const auto vec = store.value().VectorOf(dict.Lookup("word"));
  EXPECT_NEAR(vec[0], 1.0, 1e-6);
}

// ---------------------------------------------------------- serialization --

TEST(SerializationTest, DictionaryRoundTrip) {
  text::Dictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta gamma");  // spaces survive binary framing
  dict.Intern("");
  std::stringstream buffer;
  ASSERT_TRUE(SaveDictionary(dict, buffer).ok());
  auto loaded = LoadDictionary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().TokenOf(1), "beta gamma");
  EXPECT_EQ(loaded.value().Lookup("alpha"), 0u);
}

TEST(SerializationTest, SetCollectionRoundTrip) {
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{3, 1, 2});
  sets.AddSet(std::vector<TokenId>{});
  sets.AddSet(std::vector<TokenId>{7});
  std::stringstream buffer;
  ASSERT_TRUE(SaveSetCollection(sets, buffer).ok());
  auto loaded = LoadSetCollection(buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value().SetSize(0), 3u);
  EXPECT_EQ(loaded.value().SetSize(1), 0u);
  EXPECT_EQ(loaded.value().Tokens(2)[0], 7u);
}

TEST(SerializationTest, EmbeddingStoreRoundTrip) {
  embedding::EmbeddingStore store(3);
  store.Add(2, std::vector<float>{1.0f, 2.0f, 2.0f});
  store.Add(5, std::vector<float>{0.0f, 1.0f, 0.0f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 10, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().covered(), 2u);
  EXPECT_TRUE(loaded.value().Has(2));
  EXPECT_TRUE(loaded.value().Has(5));
  EXPECT_FALSE(loaded.value().Has(3));
  EXPECT_NEAR(loaded.value().Cosine(2, 5), store.Cosine(2, 5), 1e-6);
}

TEST(SerializationTest, QuantizedTierSurvivesRoundTrip) {
  // A Finalize()d store must come back quantized (the loader re-finalizes
  // from the persisted flag) with the int8 kernels agreeing exactly — the
  // codes are deterministic in the float rows.
  embedding::EmbeddingStore store(4);
  store.Add(0, std::vector<float>{0.9f, 0.1f, -0.3f, 0.2f});
  store.Add(1, std::vector<float>{-0.2f, 0.8f, 0.5f, 0.1f});
  store.Add(3, std::vector<float>{0.4f, -0.4f, 0.6f, -0.5f});
  store.Finalize();
  ASSERT_TRUE(store.quantized());

  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 10, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().quantized());
  EXPECT_GT(loaded.value().QuantizedMemoryUsageBytes(), 0u);
  // Both tiers agree with the saved store, pair by pair.
  const TokenId ids[] = {0, 1, 3};
  for (TokenId a : ids) {
    for (TokenId b : ids) {
      EXPECT_DOUBLE_EQ(loaded.value().Cosine(a, b), store.Cosine(a, b));
      EXPECT_DOUBLE_EQ(loaded.value().CosineQuantized(a, b),
                       store.CosineQuantized(a, b));
    }
  }
  // The Precision selector reads the restored tier (kInt8 must not fall
  // back to float rows).
  std::vector<TokenId> targets{0, 1, 3};
  std::vector<double> got(targets.size()), want(targets.size());
  loaded.value().CosineBatch(0, targets, std::span<double>(got),
                             embedding::Precision::kInt8);
  store.CosineBatch(0, targets, std::span<double>(want),
                    embedding::Precision::kInt8);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]);
  }
}

TEST(SerializationTest, UnquantizedStoreRoundTripsUnquantized) {
  embedding::EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 4, buffer).ok());
  auto loaded = LoadEmbeddingStore(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().quantized());
}

TEST(SerializationTest, CorruptMagicRejected) {
  std::stringstream buffer;
  buffer << "garbage bytes here and more of them";
  EXPECT_FALSE(LoadDictionary(buffer).ok());
}

TEST(SerializationTest, RepositoryFileRoundTripAndSearch) {
  // Full integration: save a workload to disk, reload, search, and compare
  // against searching the original.
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 7001);
  text::Dictionary dict;
  for (TokenId t = 0; t < 300; ++t) dict.Intern("tok" + std::to_string(t));

  const std::string path = ::testing::TempDir() + "/koios_repo.bin";
  ASSERT_TRUE(SaveRepository(dict, w.corpus.sets, &w.model->store(), path).ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  ASSERT_TRUE(repo.value().has_embeddings);
  EXPECT_EQ(repo.value().sets.size(), w.corpus.sets.size());

  sim::CosineEmbeddingSimilarity sim(&repo.value().store);
  index::InvertedIndex inverted(repo.value().sets);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &sim);
  core::KoiosSearcher searcher(&repo.value().sets, &knn);
  core::KoiosSearcher original(&w.corpus.sets, w.index.get());
  core::SearchParams params;
  params.k = 5;
  params.alpha = 0.8;
  const auto q = w.corpus.sets.Tokens(3);
  const auto r1 = searcher.Search(q, params);
  const auto r2 = original.Search(q, params);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_EQ(r1.topk[i].set, r2.topk[i].set);
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, RepositoryWithoutEmbeddings) {
  text::Dictionary dict;
  dict.Intern("a");
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0});
  const std::string path = ::testing::TempDir() + "/koios_repo_noemb.bin";
  ASSERT_TRUE(SaveRepository(dict, sets, nullptr, path).ok());
  auto repo = LoadRepository(path);
  ASSERT_TRUE(repo.ok());
  EXPECT_FALSE(repo.value().has_embeddings);
  std::remove(path.c_str());
}

// ------------------------------------------------- corruption robustness --
//
// The v3 container is designed so that EVERY byte-level corruption — any
// truncation, any single bit flip — surfaces as a clean error Status. The
// tests below enforce that exhaustively on a small repository file rather
// than spot-checking a few hand-picked offsets: the file is a few hundred
// bytes, so the full sweep is cheap and leaves no unexamined position.

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// Round-trips `bytes` through a file and LoadRepository.
util::StatusOr<LoadedRepository> LoadFromBytes(const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/koios_mutated_repo.bin";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  auto repo = LoadRepository(path);
  std::remove(path.c_str());
  return repo;
}

/// A small but complete repository (dictionary + sets + quantized
/// embeddings) saved to bytes via the real writer.
std::string TinyRepositoryBytes(bool with_embeddings, uint64_t seed = 11,
                                size_t vocab = 8) {
  text::Dictionary dict;
  for (TokenId t = 0; t < vocab; ++t) dict.Intern("t" + std::to_string(t));
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0, 2, static_cast<TokenId>(vocab - 1)});
  sets.AddSet(std::vector<TokenId>{1, 3});
  embedding::EmbeddingStore store(3);
  for (TokenId t = 0; t < vocab; ++t) {
    const float x = static_cast<float>((seed + t) % 7) + 0.5f;
    store.Add(t, std::vector<float>{x, 1.0f / x, static_cast<float>(t)});
  }
  store.Finalize();
  const std::string path = ::testing::TempDir() + "/koios_tiny_repo.bin";
  EXPECT_TRUE(
      SaveRepository(dict, sets, with_embeddings ? &store : nullptr, path)
          .ok());
  std::string bytes = FileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

TEST(CorruptionMatrixTest, EveryTruncationReturnsError) {
  const std::string bytes = TinyRepositoryBytes(/*with_embeddings=*/true);
  ASSERT_GT(bytes.size(), 9u);
  // Every strict prefix — which includes every section boundary — must be
  // rejected; only the full file loads.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto repo = LoadFromBytes(bytes.substr(0, len));
    EXPECT_FALSE(repo.ok()) << "truncation to " << len << " bytes loaded";
  }
  EXPECT_TRUE(LoadFromBytes(bytes).ok());
}

TEST(CorruptionMatrixTest, EverySingleBitFlipReturnsError) {
  for (const bool with_embeddings : {true, false}) {
    const std::string bytes = TinyRepositoryBytes(with_embeddings);
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        auto repo = LoadFromBytes(mutated);
        EXPECT_FALSE(repo.ok())
            << "bit " << bit << " of byte " << i << " flipped (embeddings="
            << with_embeddings << ") but the file still loaded";
      }
    }
  }
}

TEST(CorruptionMatrixTest, WrongMagicAndVersionsRejected) {
  std::string bytes = TinyRepositoryBytes(/*with_embeddings=*/true);
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(LoadFromBytes(wrong_magic).ok());
  // v2 was never written; v5 does not exist. Both must be rejected
  // outright (version byte is at offset 4, little-endian u32).
  for (const char version : {2, 5}) {
    std::string wrong_version = bytes;
    wrong_version[4] = version;
    auto repo = LoadFromBytes(wrong_version);
    ASSERT_FALSE(repo.ok());
    EXPECT_NE(repo.status().message().find("version"), std::string::npos);
  }
  // A v3 body whose version byte claims 4 routes to the v4 mmap loader
  // and must fail ITS structural validation (a v3 stream is not a v4
  // arena layout) — rejected, never misparsed.
  std::string fake_v4 = bytes;
  fake_v4[4] = 4;
  EXPECT_FALSE(LoadFromBytes(fake_v4).ok());
}

TEST(CorruptionMatrixTest, TrailingBytesRejected) {
  std::string bytes = TinyRepositoryBytes(/*with_embeddings=*/true);
  bytes.push_back('\0');
  EXPECT_FALSE(LoadFromBytes(bytes).ok());
}

TEST(CorruptionMatrixTest, MixedGenerationSpliceRejected) {
  // Two individually valid repositories from different "generations": A
  // has a 2-token dictionary, B's sets reference token ids up to 11. A
  // file spliced from A's dictionary frame and B's sets frame has
  // perfectly valid checksums on both sections — only the cross-artifact
  // validation can catch it.
  const std::string a = TinyRepositoryBytes(false, /*seed=*/1, /*vocab=*/2);
  const std::string b = TinyRepositoryBytes(false, /*seed=*/2, /*vocab=*/12);
  constexpr size_t kHeader = 9;   // magic u32 + version u32 + has_embeddings u8
  constexpr size_t kFrame = 12;   // length u64 + crc u32
  auto frame_end = [&](const std::string& bytes, size_t start) {
    uint64_t length = 0;
    std::memcpy(&length, bytes.data() + start, sizeof(length));
    return start + kFrame + static_cast<size_t>(length);
  };
  const size_t a_dict_end = frame_end(a, kHeader);
  const size_t b_dict_end = frame_end(b, kHeader);
  std::string spliced = a.substr(0, a_dict_end) + b.substr(b_dict_end);
  auto repo = LoadFromBytes(spliced);
  ASSERT_FALSE(repo.ok());
  EXPECT_NE(repo.status().message().find("beyond the dictionary"),
            std::string::npos);
}

TEST(CorruptionMatrixTest, EmbeddingRowBeyondBoundRejected) {
  embedding::EmbeddingStore store(2);
  store.Add(5, std::vector<float>{1.0f, 0.0f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 10, buffer).ok());
  // Unbounded load accepts it; a repository whose dictionary has only 3
  // tokens must not.
  auto unbounded = LoadEmbeddingStore(buffer);
  EXPECT_TRUE(unbounded.ok());
  buffer.clear();
  buffer.seekg(0);
  auto bounded = LoadEmbeddingStore(buffer, /*token_id_bound=*/3);
  ASSERT_FALSE(bounded.ok());
  EXPECT_NE(bounded.status().message().find("outside the dictionary"),
            std::string::npos);
}

TEST(CorruptionMatrixTest, DuplicateEmbeddingRowRejected) {
  // The writer cannot produce a duplicate row, so craft the stream by
  // saving one row and repeating its bytes with the row count bumped.
  embedding::EmbeddingStore store(2);
  store.Add(1, std::vector<float>{0.5f, 0.5f});
  std::stringstream buffer;
  ASSERT_TRUE(SaveEmbeddingStore(store, 4, buffer).ok());
  std::string bytes = buffer.str();
  // Layout: magic u32, version u32, dim u64, rows u64, quantized u8, rows.
  const size_t row_start = 4 + 4 + 8 + 8 + 1;
  const std::string row = bytes.substr(row_start);
  uint64_t rows = 2;
  bytes.replace(4 + 4 + 8, sizeof(rows),
                reinterpret_cast<const char*>(&rows), sizeof(rows));
  bytes += row;
  std::istringstream doubled(bytes);
  auto loaded = LoadEmbeddingStore(doubled);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST(CorruptionMatrixTest, LegacyV1StillLoads) {
  // Mixed-version fleet: files written by the unframed v1 writer keep
  // loading (without checksum protection), including the quantized flag
  // inside the embedding section.
  auto w = testing::MakeRandomWorkload(20, 50, 3, 8, 4242);
  text::Dictionary dict;
  for (TokenId t = 0; t < 50; ++t) dict.Intern("tok" + std::to_string(t));
  const std::string v1_path = ::testing::TempDir() + "/koios_repo_v1.bin";
  ASSERT_TRUE(
      SaveRepositoryLegacyV1(dict, w.corpus.sets, &w.model->store(), v1_path)
          .ok());
  auto repo = LoadRepository(v1_path);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_TRUE(repo.value().has_embeddings);
  EXPECT_EQ(repo.value().sets.size(), w.corpus.sets.size());
  EXPECT_EQ(repo.value().dict.size(), 50u);
  // Truncating a legacy file must still fail cleanly (bounded allocation,
  // no checksums needed for that guarantee).
  const std::string bytes = FileBytes(v1_path);
  std::remove(v1_path.c_str());
  for (size_t len = 0; len < bytes.size(); len += 97) {
    EXPECT_FALSE(LoadFromBytes(bytes.substr(0, len)).ok())
        << "v1 truncation to " << len << " bytes loaded";
  }
}

TEST(CorruptionMatrixTest, SaveLeavesNoTempFileBehind) {
  text::Dictionary dict;
  dict.Intern("a");
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0});
  const std::string path = ::testing::TempDir() + "/koios_atomic_repo.bin";
  ASSERT_TRUE(SaveRepository(dict, sets, nullptr, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(static_cast<bool>(tmp)) << "temp file left behind";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios::io
