// TraceRecorder (ISSUE 9): the sampled span profiler behind /debug/tracez,
// the slow-query log, and koios_phase_seconds. Pinned here:
//   * the disabled path records nothing and hands out no trace ids;
//   * sampling is deterministic (1st, N+1th, ... arrivals after Configure);
//   * spans nest (parent ids) and survive cross-thread adoption;
//   * per-thread rings wrap in place, keeping the newest spans;
//   * phase histograms bucket span durations;
//   * RenderChromeTraceJson emits schema-valid Chrome trace-event JSON;
//   * an end-to-end engine query's spans cover >= 95% of the search span.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "koios/serve/query_engine.h"
#include "koios/util/trace_recorder.h"
#include "test_util.h"

namespace koios::util {
namespace {

/// Reconfigures the (process-global) recorder and wipes previous state.
/// Tests in this file run serially within gtest, so the shared singleton
/// is safe to reset between them.
void ResetRecorder(uint32_t sample_every, size_t ring_spans = 4096) {
  TraceRecorder& rec = TraceRecorder::Instance();
  rec.Disable();
  rec.ResetForTest();
  if (sample_every > 0) {
    TraceRecorder::Options options;
    options.sample_every = sample_every;
    options.ring_spans = ring_spans;
    rec.Configure(options);
  }
}

TEST(TraceRecorderTest, DisabledPathRecordsNothing) {
  ResetRecorder(0);
  TraceRecorder& rec = TraceRecorder::Instance();
  EXPECT_FALSE(TraceRecorder::Enabled());
  EXPECT_EQ(rec.StartTrace(), 0u);
  EXPECT_EQ(rec.StartTraceForced(), 0u);
  {
    KOIOS_TRACE_SPAN("test.disabled");
    KOIOS_TRACE_SPAN_ARG("test.disabled_arg", "n", 7);
  }
  rec.RecordManualSpan("test.manual", /*trace_id=*/0, 0, 0, 0, 10);
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_TRUE(rec.PhaseHistograms().empty());
}

TEST(TraceRecorderTest, SamplingIsDeterministicOneInN) {
  ResetRecorder(4);
  TraceRecorder& rec = TraceRecorder::Instance();
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(rec.StartTrace());
  // Arrivals 0, 4, 8 are sampled; every other arrival gets 0.
  for (int i = 0; i < 12; ++i) {
    if (i % 4 == 0) {
      EXPECT_NE(ids[i], 0u) << "arrival " << i;
    } else {
      EXPECT_EQ(ids[i], 0u) << "arrival " << i;
    }
  }
  // Sampled ids are distinct.
  EXPECT_NE(ids[0], ids[4]);
  EXPECT_NE(ids[4], ids[8]);
}

TEST(TraceRecorderTest, SpansNestAndUnsampledSpansAreFree) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();

  // No ambient trace: the span object stays inactive and records nothing.
  {
    KOIOS_TRACE_SPAN("test.orphan");
  }
  EXPECT_TRUE(rec.Snapshot().empty());

  const uint64_t trace = rec.StartTraceForced();
  ASSERT_NE(trace, 0u);
  TraceAdopt adopt(trace, 0);
  uint64_t outer_id = 0;
  {
    TraceSpan outer("test.outer");
    outer_id = outer.span_id();
    TraceSpan inner("test.inner", "arg", 42);
    EXPECT_EQ(inner.trace_id(), trace);
  }

  const std::vector<TraceSpanRecord> spans = rec.SnapshotTrace(trace);
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpanRecord* outer = nullptr;
  const TraceSpanRecord* inner = nullptr;
  for (const TraceSpanRecord& s : spans) {
    if (std::string(s.name) == "test.outer") outer = &s;
    if (std::string(s.name) == "test.inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);           // root under the adopted trace
  EXPECT_EQ(inner->parent_id, outer_id);     // nested under the outer span
  EXPECT_EQ(std::string(inner->arg_name), "arg");
  EXPECT_EQ(inner->arg_value, 42u);
  EXPECT_LE(outer->t0_ns, inner->t0_ns);     // inner opened after outer
  EXPECT_GE(outer->t1_ns, inner->t1_ns);     // and closed before it
}

TEST(TraceRecorderTest, AdoptionCarriesTracesAcrossThreads) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  uint64_t root = 0;
  {
    TraceAdopt adopt(trace, 0);
    TraceSpan parent("test.parent");
    root = parent.span_id();
    std::thread worker([&] {
      TraceAdopt hop(trace, root);
      KOIOS_TRACE_SPAN("test.worker");
    });
    worker.join();
  }
  const std::vector<TraceSpanRecord> spans = rec.SnapshotTrace(trace);
  ASSERT_EQ(spans.size(), 2u);
  uint32_t parent_thread = 0, worker_thread = 0;
  for (const TraceSpanRecord& s : spans) {
    if (std::string(s.name) == "test.worker") {
      EXPECT_EQ(s.parent_id, root);
      worker_thread = s.thread_index;
    } else {
      parent_thread = s.thread_index;
    }
  }
  EXPECT_NE(parent_thread, worker_thread);  // recorded on separate rings
}

TEST(TraceRecorderTest, RingWrapsInPlaceKeepingNewestSpans) {
  // Ring capacity rounds up to a power of two; ask for 8 exactly. Capacity
  // applies to threads recording their FIRST span after Configure, so the
  // wrapping writer runs on a fresh thread (the test main thread's ring
  // was already sized by earlier tests).
  ResetRecorder(1, /*ring_spans=*/8);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  std::thread writer([&] {
    TraceAdopt adopt(trace, 0);
    for (int i = 0; i < 100; ++i) {
      TraceSpan span("test.wrap", "i", static_cast<uint64_t>(i));
    }
  });
  writer.join();
  const std::vector<TraceSpanRecord> spans = rec.SnapshotTrace(trace);
  ASSERT_EQ(spans.size(), 8u);  // exactly one ring of the newest spans
  for (const TraceSpanRecord& s : spans) {
    EXPECT_GE(s.arg_value, 92u);  // 92..99 survive, 0..91 overwritten
  }
  // The phase histogram saw ALL 100 spans — it aggregates, never wraps.
  bool found = false;
  for (const auto& phase : rec.PhaseHistograms()) {
    if (std::string(phase.name) == "test.wrap") {
      EXPECT_EQ(phase.count, 100u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TraceRecorderTest, PhaseHistogramsBucketDurations) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  // Manual spans give exact durations: 2us, 10ms, 1s.
  rec.RecordManualSpan("test.phase", trace, 0, 0, 0, 2000);
  rec.RecordManualSpan("test.phase", trace, 0, 0, 0, 10000000);
  rec.RecordManualSpan("test.phase", trace, 0, 0, 0, 1000000000);

  const std::vector<double>& bounds = TraceRecorder::PhaseBucketBounds();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  const auto phases = rec.PhaseHistograms();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(std::string(phases[0].name), "test.phase");
  EXPECT_EQ(phases[0].count, 3u);
  EXPECT_NEAR(phases[0].sum, 1.010002, 1e-6);
  ASSERT_EQ(phases[0].buckets.size(), bounds.size() + 1);
  uint64_t total = 0;
  for (uint64_t b : phases[0].buckets) total += b;
  EXPECT_EQ(total, 3u);
}

// ---- Chrome trace-event JSON schema validation --------------------------
// A small recursive-descent JSON parser: enough to prove the tracez
// payload parses and has the Chrome trace-event shape Perfetto loads.

struct JsonCursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos])) != 0) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out = nullptr) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        // Validate the escape class; decoding fidelity is not under test.
        if (std::string("\"\\/bfnrtu").find(text[pos]) == std::string::npos) {
          return false;
        }
        if (text[pos] == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() ||
                std::isxdigit(static_cast<unsigned char>(text[pos])) == 0) {
              return false;
            }
          }
        }
      } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return false;  // raw control characters are invalid JSON
      }
      value += text[pos];
      ++pos;
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    if (out != nullptr) *out = value;
    return true;
  }
  bool ParseNumber() {
    SkipWs();
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    return pos > start;
  }
  bool ParseValue() {
    SkipWs();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') return ParseObject(nullptr);
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (text.compare(pos, 4, "true") == 0) return pos += 4, true;
    if (text.compare(pos, 5, "false") == 0) return pos += 5, true;
    if (text.compare(pos, 4, "null") == 0) return pos += 4, true;
    return ParseNumber();
  }
  bool ParseArray() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Eat(','));
    return Eat(']');
  }
  bool ParseObject(std::vector<std::string>* keys) {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    do {
      std::string key;
      if (!ParseString(&key)) return false;
      if (keys != nullptr) keys->push_back(key);
      if (!Eat(':')) return false;
      if (!ParseValue()) return false;
    } while (Eat(','));
    return Eat('}');
  }
};

TEST(TraceRecorderTest, ChromeTraceJsonIsSchemaValid) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  {
    TraceAdopt adopt(trace, 0);
    TraceSpan root("test.request");
    // A name needing escaping would be a literal with quotes; args cover
    // the numeric path.
    TraceSpan child("test.child", "bytes", 1234);
  }

  const std::string json = rec.RenderChromeTraceJson();
  JsonCursor cursor{json};
  std::vector<std::string> top_keys;
  ASSERT_TRUE(cursor.ParseObject(&top_keys)) << json;
  cursor.SkipWs();
  EXPECT_EQ(cursor.pos, json.size()) << "trailing bytes after JSON object";

  bool has_events = false;
  for (const std::string& key : top_keys) {
    if (key == "traceEvents") has_events = true;
  }
  EXPECT_TRUE(has_events) << json;

  // Event-shape spot checks: complete events with microsecond ts/dur and
  // the per-trace process metadata Perfetto uses for track names.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.child\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  // Disabled renders stay valid JSON with an empty event list.
  ResetRecorder(0);
  const std::string empty = rec.RenderChromeTraceJson();
  JsonCursor empty_cursor{empty};
  EXPECT_TRUE(empty_cursor.ParseObject(nullptr)) << empty;
}

TEST(TraceRecorderTest, SpanTreeRendersNestedDurations) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  {
    TraceAdopt adopt(trace, 0);
    TraceSpan outer("test.outer");
    TraceSpan inner("test.inner");
  }
  const std::string tree = rec.RenderSpanTree(trace);
  const size_t outer_pos = tree.find("test.outer");
  const size_t inner_pos = tree.find("test.inner");
  ASSERT_NE(outer_pos, std::string::npos) << tree;
  ASSERT_NE(inner_pos, std::string::npos) << tree;
  EXPECT_NE(tree.find("ms"), std::string::npos);
  // The child is indented deeper than its parent.
  const size_t outer_line = tree.rfind('\n', outer_pos);
  const size_t inner_line = tree.rfind('\n', inner_pos);
  const size_t outer_indent =
      outer_pos - (outer_line == std::string::npos ? 0 : outer_line + 1);
  const size_t inner_indent =
      inner_pos - (inner_line == std::string::npos ? 0 : inner_line + 1);
  EXPECT_GT(inner_indent, outer_indent) << tree;
}

// ---- end-to-end: a real engine query's spans cover its search time ------

TEST(TraceRecorderTest, EngineQuerySpansCoverSearchWallTime) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();

  auto w = koios::testing::MakeRandomWorkload(400, 600, 8, 24, 90807);
  serve::EngineOptions options;
  options.num_threads = 2;
  serve::QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  core::SearchParams params;
  params.k = 5;
  params.alpha = 0.7;
  params.num_threads = 1;
  const auto tokens = w.corpus.sets.Tokens(0);
  const serve::QueryEngine::Result result =
      engine.Submit({tokens.begin(), tokens.end()}, params).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Find the search root and sum its direct children (the serial serve
  // pipeline: cursor build -> refinement -> postprocess partition its
  // wall time; em batches nest inside postprocess).
  const std::vector<TraceSpanRecord> spans = rec.Snapshot();
  const TraceSpanRecord* search = nullptr;
  for (const TraceSpanRecord& s : spans) {
    if (std::string(s.name) == "search") search = &s;
  }
  ASSERT_NE(search, nullptr) << "query was not traced";
  double children_sec = 0.0;
  bool saw_queue_wait = false;
  for (const TraceSpanRecord& s : spans) {
    if (s.trace_id != search->trace_id) continue;
    if (s.parent_id == search->span_id &&
        std::string(s.name).rfind("search.", 0) == 0) {
      children_sec += s.DurationSeconds();
    }
    if (std::string(s.name) == "serve.queue_wait") saw_queue_wait = true;
  }
  EXPECT_TRUE(saw_queue_wait);
  const double search_sec = search->DurationSeconds();
  ASSERT_GT(search_sec, 0.0);
  // The acceptance bar: instrumented phases account for >= 95% of the
  // search span's wall time.
  EXPECT_GE(children_sec, 0.95 * search_sec)
      << "children " << children_sec << "s of " << search_sec << "s";
  EXPECT_LE(children_sec, search_sec * 1.001);
}

TEST(TraceRecorderTest, SlowQueryLogDumpsSpanTreeAndStats) {
  ResetRecorder(1);

  auto w = koios::testing::MakeRandomWorkload(2000, 1200, 10, 30, 90808);
  serve::EngineOptions options;
  options.num_threads = 1;
  // Threshold 0ms is "off"; the smallest representable threshold makes
  // every query slow without timing assumptions about the machine.
  options.slow_query_threshold = std::chrono::milliseconds(1);
  std::vector<std::string> logged;
  options.slow_query_sink = [&logged](const std::string& line) {
    logged.push_back(line);
  };
  serve::QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.7;
  params.num_threads = 1;
  const auto tokens = w.corpus.sets.Tokens(1);
  const serve::QueryEngine::Result result =
      engine.Submit({tokens.begin(), tokens.end()}, params).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  if (engine.counters().slow_queries == 0) {
    GTEST_SKIP() << "query finished under 1ms on this machine";
  }
  ASSERT_FALSE(logged.empty());
  const std::string& line = logged.front();
  EXPECT_NE(line.find("slow query:"), std::string::npos) << line;
  EXPECT_NE(line.find("k=10"), std::string::npos);
  // The query was sampled (1-in-1), so the dump carries its span tree and
  // the per-phase stats block.
  EXPECT_NE(line.find("search"), std::string::npos);
  EXPECT_NE(line.find("ms"), std::string::npos);
}

TEST(TraceRecorderTest, DisableQuiescesRecordingImmediately) {
  ResetRecorder(1);
  TraceRecorder& rec = TraceRecorder::Instance();
  const uint64_t trace = rec.StartTraceForced();
  {
    TraceAdopt adopt(trace, 0);
    KOIOS_TRACE_SPAN("test.before");
  }
  rec.Disable();
  EXPECT_FALSE(TraceRecorder::Enabled());
  EXPECT_EQ(rec.StartTrace(), 0u);
  {
    // Adoption and spans after Disable are inert.
    TraceAdopt adopt(trace, 0);
    KOIOS_TRACE_SPAN("test.after");
  }
  bool saw_after = false;
  for (const TraceSpanRecord& s : rec.Snapshot()) {
    if (std::string(s.name) == "test.after") saw_after = true;
  }
  EXPECT_FALSE(saw_after);
}

}  // namespace
}  // namespace koios::util
