// Sharded scatter-gather execution (ROADMAP item 4): slicing a collection
// must partition it exactly, any shard count must answer bit-identically
// to the single-shard engine (including under ties that straddle shard
// boundaries — the property the TSan job hammers with threads), the
// cross-shard θlb exchange must provably reduce producer work without
// changing results, SearchStats::Merge must aggregate every field, and
// snapshot hot-swaps must stay atomic with a sharded engine under load.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/core/stats.h"
#include "koios/io/serialization.h"
#include "koios/io/shard_slice.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/shard_coordinator.h"
#include "koios/serve/snapshot.h"
#include "test_util.h"

namespace koios::serve {
namespace {

using core::KoiosSearcher;
using core::SearchParams;
using core::SearchResult;
using core::SearchStats;

struct Scenario {
  std::vector<TokenId> query;
  SearchParams params;
};

/// Mixed k/α/|Q| scenarios drawn from stored sets (the serve suite's
/// convention, so sharded coverage mirrors the unsharded tests).
std::vector<Scenario> MakeScenarios(const index::SetCollection& sets,
                                    size_t count) {
  const size_t ks[] = {1, 5, 10};
  const Score alphas[] = {0.65, 0.8};
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    Scenario s;
    const auto tokens =
        sets.Tokens(static_cast<SetId>((i * 13) % sets.size()));
    s.query.assign(tokens.begin(), tokens.end());
    s.params.k = ks[i % 3];
    s.params.alpha = alphas[i % 2];
    s.params.num_threads = 1;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

void ExpectSameResult(const SearchResult& got, const SearchResult& want,
                      const std::string& label) {
  ASSERT_EQ(got.topk.size(), want.topk.size()) << label;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    EXPECT_EQ(got.topk[i].set, want.topk[i].set) << label << " entry " << i;
    EXPECT_DOUBLE_EQ(got.topk[i].score, want.topk[i].score)
        << label << " entry " << i;
    EXPECT_EQ(got.topk[i].exact, want.topk[i].exact) << label << " entry "
                                                     << i;
  }
}

TEST(ShardSliceTest, SlicesPartitionTheCollectionExactly) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 12001);
  const index::SetCollection& full = w.corpus.sets;

  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    const auto slices = io::SliceCollection(full, n);
    ASSERT_EQ(slices.size(), n);

    size_t covered = 0;
    SetId expected_base = 0;
    for (const io::ShardSlice& slice : slices) {
      EXPECT_EQ(slice.base, expected_base) << "shards must be contiguous";
      EXPECT_EQ(slice.sets.TokenIdBound(), full.TokenIdBound())
          << "every shard shares the replicated index's vocabulary";
      // CSR invariants of the rebased offsets.
      ASSERT_FALSE(slice.offsets.empty());
      EXPECT_EQ(slice.offsets.front(), 0u);
      EXPECT_EQ(slice.offsets.back(), slice.sets.TotalTokens());
      // Every set's tokens, read through the slice, are the parent's.
      for (SetId local = 0; local < slice.sets.size(); ++local) {
        const auto got = slice.sets.Tokens(local);
        const auto want = full.Tokens(slice.base + local);
        ASSERT_EQ(got.size(), want.size());
        EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
            << "shard base " << slice.base << " local " << local;
      }
      covered += slice.sets.size();
      expected_base += static_cast<SetId>(slice.sets.size());
      // Balanced to within one set.
      EXPECT_LE(slice.sets.size(), full.size() / n + 1);
      EXPECT_GE(slice.sets.size(), full.size() / n);
    }
    EXPECT_EQ(covered, full.size()) << "every set in exactly one shard";
  }
}

TEST(ShardSliceTest, ClampsShardCountToTheSetCount) {
  auto w = testing::MakeRandomWorkload(10, 100, 3, 8, 12002);
  const index::SetCollection& full = w.corpus.sets;

  // More shards than sets: one set per shard.
  const auto singles = io::SliceCollection(full, 500);
  ASSERT_EQ(singles.size(), full.size());
  for (const auto& slice : singles) EXPECT_EQ(slice.sets.size(), 1u);

  // Zero requested: one shard holding everything.
  const auto all = io::SliceCollection(full, 0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].base, 0u);
  EXPECT_EQ(all[0].sets.size(), full.size());
  EXPECT_EQ(all[0].sets.TotalTokens(), full.TotalTokens());
}

TEST(ShardSliceTest, PlanMatchesTheSlicesItPredicts) {
  auto w = testing::MakeRandomWorkload(97, 400, 4, 20, 12003);
  const index::SetCollection& full = w.corpus.sets;
  for (size_t n : {size_t{1}, size_t{3}, size_t{8}}) {
    const auto plans = io::PlanShards(full, n);
    const auto slices = io::SliceCollection(full, n);
    ASSERT_EQ(plans.size(), slices.size());
    size_t total_tokens = 0;
    for (size_t i = 0; i < plans.size(); ++i) {
      EXPECT_EQ(plans[i].first_set, slices[i].base);
      EXPECT_EQ(plans[i].set_count, slices[i].sets.size());
      EXPECT_EQ(plans[i].token_count, slices[i].sets.TotalTokens());
      EXPECT_EQ(plans[i].postings_bytes,
                plans[i].token_count * sizeof(TokenId));
      EXPECT_EQ(plans[i].offsets_bytes,
                (plans[i].set_count + 1) * sizeof(uint64_t));
      total_tokens += plans[i].token_count;
    }
    EXPECT_EQ(total_tokens, full.TotalTokens());
  }
}

TEST(ShardCoordinatorTest, EveryShardCountIsBitIdenticalToSerial) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 12004);
  const auto scenarios = MakeScenarios(w.corpus.sets, 18);

  KoiosSearcher serial(&w.corpus.sets, w.index.get());
  std::vector<SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial.Search(s.query, s.params));
  }

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    EngineOptions options;
    options.num_threads = 2;
    options.num_shards = shards;
    QueryEngine engine(&w.corpus.sets, w.index.get(), options);
    EXPECT_EQ(engine.num_shards(), shards);

    std::vector<std::future<QueryEngine::Result>> futures;
    for (const Scenario& s : scenarios) {
      futures.push_back(engine.Submit(s.query, s.params));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      QueryEngine::Result result = futures[i].get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSameResult(result.value(), reference[i],
                       "shards=" + std::to_string(shards) + " scenario " +
                           std::to_string(i));
    }

    // The per-shard observability the governor and /metrics read: every
    // shard executed every query, and the fan-out actually produced work.
    for (size_t i = 0; i < shards; ++i) {
      EXPECT_EQ(engine.shard_latency(i).count(), scenarios.size())
          << "shard " << i << " of " << shards;
      EXPECT_GT(engine.shard_search_stats(i).stream_tuples_produced, 0u);
    }
    EXPECT_EQ(engine.shard_latency(shards).count(), 0u)
        << "out-of-range shard reads an empty recorder";
  }
}

/// A corpus of 4 exact copies of each distinct content, spread so copies
/// straddle every power-of-two shard boundary: id i holds content
/// i % distinct. Copies score IDENTICALLY on every query, so the top-k is
/// tie-dense and only the global (score desc, id asc) order makes the
/// answer unique.
index::SetCollection MakeTieCorpus(const index::SetCollection& source,
                                   size_t distinct, size_t copies) {
  index::SetCollection sets;
  for (size_t i = 0; i < distinct * copies; ++i) {
    const auto tokens = source.Tokens(static_cast<SetId>(i % distinct));
    sets.AddSet(std::vector<TokenId>(tokens.begin(), tokens.end()));
  }
  return sets;
}

TEST(ShardCoordinatorTest, TieBreaksDeterministicAcrossShardsAndThreads) {
  auto w = testing::MakeRandomWorkload(30, 300, 5, 15, 12005);
  const index::SetCollection ties = MakeTieCorpus(w.corpus.sets, 30, 4);

  SearchParams params;
  params.k = 10;  // 4-way ties guarantee the cut lands inside a tie group
  params.alpha = 0.65;
  params.num_threads = 1;
  std::vector<std::vector<TokenId>> queries;
  for (SetId id = 0; id < 10; ++id) {
    const auto tokens = ties.Tokens(id);
    queries.emplace_back(tokens.begin(), tokens.end());
  }

  KoiosSearcher serial(&ties, w.index.get());
  std::vector<SearchResult> reference;
  for (const auto& q : queries) reference.push_back(serial.Search(q, params));
  // The premise: the cut really does land inside a tie group.
  ASSERT_GE(reference[0].topk.size(), 4u);
  EXPECT_DOUBLE_EQ(reference[0].topk[0].score, reference[0].topk[3].score);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      EngineOptions options;
      options.num_threads = threads;
      options.num_shards = shards;
      QueryEngine engine(&ties, w.index.get(), options);

      std::vector<std::future<QueryEngine::Result>> futures;
      for (size_t rep = 0; rep < 2; ++rep) {
        for (const auto& q : queries) {
          futures.push_back(engine.Submit(q, params));
        }
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        QueryEngine::Result r = futures[i].get();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        ExpectSameResult(r.value(), reference[i % queries.size()],
                         "threads=" + std::to_string(threads) +
                             " shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardCoordinatorTest, ThetaExchangeCutsProducerWorkWithoutChangingResults) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 12006);
  const auto scenarios = MakeScenarios(w.corpus.sets, 8);

  // Sequential scatter (null pool) makes the tuple counts reproducible:
  // shard 0 runs to completion first, so with the exchange on its θlb is
  // already published when shard 1's producer starts — the deterministic
  // floor of the saving the scaling bench measures under concurrency.
  auto run = [&](bool exchange) {
    ShardOptions options;
    options.num_shards = 4;
    options.theta_exchange = exchange;
    ShardCoordinator coordinator(&w.corpus.sets, w.index.get(), options);
    size_t produced = 0;
    std::vector<SearchResult> results;
    for (const Scenario& s : scenarios) {
      ShardCoordinator::QueryReport report;
      results.push_back(coordinator.Execute(s.query, s.params, {},
                                            /*shard_pool=*/nullptr, &report));
      for (const SearchStats& stats : report.shard_stats) {
        produced += stats.stream_tuples_produced;
      }
    }
    return std::make_pair(produced, std::move(results));
  };

  const auto [with_exchange, results_on] = run(true);
  const auto [without_exchange, results_off] = run(false);

  for (size_t i = 0; i < scenarios.size(); ++i) {
    ExpectSameResult(results_on[i], results_off[i],
                     "exchange on/off scenario " + std::to_string(i));
  }
  EXPECT_LT(with_exchange, without_exchange)
      << "cross-shard θlb exchange must reduce the tuples producers "
         "materialize (it only ever tightens the stop similarity)";
}

TEST(SearchStatsTest, MergeAggregatesEveryField) {
  // Distinct primes everywhere so a dropped or double-counted field shows
  // up as a unique wrong sum, not a coincidence.
  SearchStats a;
  a.stream_tuples = 3;
  a.stream_tuples_produced = 5;
  a.stream_stop_sim = 0.7;
  a.stream_survivor_budget = 32;
  a.candidates = 7;
  a.iub_filtered = 11;
  a.bucket_moves = 13;
  a.postprocess_sets = 17;
  a.no_em_skipped = 19;
  a.em_early_terminated = 23;
  a.em_computed = 29;
  a.postprocess_ub_pruned = 31;
  a.result_verification_ems = 37;
  a.em_workspace_reuses = 41;
  a.timers.Accumulate("refinement", 1.0);
  a.timers.Accumulate("cursor_build", 0.25);
  a.memory.Add("candidates", 100);

  SearchStats b;
  b.stream_tuples = 43;
  b.stream_tuples_produced = 47;
  b.stream_stop_sim = 0.9;
  b.stream_survivor_budget = 8;
  b.candidates = 53;
  b.iub_filtered = 59;
  b.bucket_moves = 61;
  b.postprocess_sets = 67;
  b.no_em_skipped = 71;
  b.em_early_terminated = 73;
  b.em_computed = 79;
  b.postprocess_ub_pruned = 83;
  b.result_verification_ems = 89;
  b.em_workspace_reuses = 97;
  b.timers.Accumulate("refinement", 2.0);
  b.timers.Accumulate("postprocess", 0.5);
  b.memory.Add("candidates", 50);
  b.memory.Add("stream", 200);

  a.Merge(b);
  // Sums: the per-shard reports must ADD up to the query's totals.
  EXPECT_EQ(a.stream_tuples, 46u);
  EXPECT_EQ(a.stream_tuples_produced, 52u);
  EXPECT_EQ(a.candidates, 60u);
  EXPECT_EQ(a.iub_filtered, 70u);
  EXPECT_EQ(a.bucket_moves, 74u);
  EXPECT_EQ(a.postprocess_sets, 84u);
  EXPECT_EQ(a.no_em_skipped, 90u);
  EXPECT_EQ(a.em_early_terminated, 96u);
  EXPECT_EQ(a.em_computed, 108u);
  EXPECT_EQ(a.postprocess_ub_pruned, 114u);
  EXPECT_EQ(a.result_verification_ems, 126u);
  EXPECT_EQ(a.em_workspace_reuses, 138u);
  // Max semantics: a merged view reports the best stop similarity any
  // consumer reached and the largest budget any consumer was granted.
  EXPECT_DOUBLE_EQ(a.stream_stop_sim, 0.9);
  EXPECT_EQ(a.stream_survivor_budget, 32u);
  // Timers sum per phase; phases unique to one side survive.
  EXPECT_DOUBLE_EQ(a.timers.Get("refinement"), 3.0);
  EXPECT_DOUBLE_EQ(a.timers.Get("cursor_build"), 0.25);
  EXPECT_DOUBLE_EQ(a.timers.Get("postprocess"), 0.5);
  // Memory categories sum.
  EXPECT_EQ(a.memory.Get("candidates"), 150u);
  EXPECT_EQ(a.memory.Get("stream"), 200u);

  // Merging an empty stats object is the identity.
  const SearchStats before = a;
  a.Merge(SearchStats{});
  EXPECT_EQ(a.stream_tuples, before.stream_tuples);
  EXPECT_DOUBLE_EQ(a.stream_stop_sim, before.stream_stop_sim);
  EXPECT_DOUBLE_EQ(a.timers.Total(), before.timers.Total());
  EXPECT_EQ(a.memory.TotalBytes(), before.memory.TotalBytes());
}

/// Saves a workload as a repository file and loads it back as a snapshot
/// (the serve suite's helper, repeated here for the sharded swap test).
std::shared_ptr<const Snapshot> SnapshotOf(const testing::RandomWorkload& w,
                                           size_t vocab_size,
                                           const std::string& filename) {
  text::Dictionary dict;
  for (size_t t = 0; t < vocab_size; ++t) {
    dict.Intern("tok" + std::to_string(t));
  }
  const std::string path = ::testing::TempDir() + "/" + filename;
  EXPECT_TRUE(
      io::SaveRepository(dict, w.corpus.sets, &w.model->store(), path).ok());
  auto snapshot = Snapshot::Load(path);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::remove(path.c_str());
  return snapshot.value();
}

TEST(ShardCoordinatorTest, SwapUnderLoadStaysAtomicWithShards) {
  // The sharded version of the serve suite's swap-under-load test: every
  // result must match exactly one snapshot's serial reference — a query
  // that saw snapshot A's shard 0 and snapshot B's shard 1 would blend
  // rankings and match neither. The coordinator lives inside the
  // immutable ServingState, so shards swap as one unit or not at all.
  auto w1 = testing::MakeRandomWorkload(80, 400, 5, 18, 12007);
  auto w2 = testing::MakeRandomWorkload(80, 400, 5, 18, 12008);
  std::shared_ptr<const Snapshot> snap1 =
      SnapshotOf(w1, 400, "koios_shard_swap_1.bin");
  std::shared_ptr<const Snapshot> snap2 =
      SnapshotOf(w2, 400, "koios_shard_swap_2.bin");
  KoiosSearcher ref1(&snap1->sets(), snap1->index());
  KoiosSearcher ref2(&snap2->sets(), snap2->index());

  SearchParams params;
  params.k = 5;
  params.alpha = 0.7;
  const auto q1 = snap1->sets().Tokens(7);
  const auto q2 = snap2->sets().Tokens(7);
  const SearchResult want_q1_on1 = ref1.Search(q1, params);
  const SearchResult want_q1_on2 = ref2.Search(q1, params);
  const SearchResult want_q2_on1 = ref1.Search(q2, params);
  const SearchResult want_q2_on2 = ref2.Search(q2, params);

  EngineOptions options;
  options.num_threads = 2;
  options.num_shards = 4;
  QueryEngine engine(snap1, options);
  ASSERT_EQ(engine.num_shards(), 4u);

  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop{false};
  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < 20; ++i) {
        const bool first = i % 2 == 0;
        QueryEngine::Result r =
            engine.Submit(first ? std::vector<TokenId>(q1.begin(), q1.end())
                                : std::vector<TokenId>(q2.begin(), q2.end()),
                          params)
                .get();
        if (!r.ok()) {
          ++mismatches;
          continue;
        }
        const SearchResult& a = first ? want_q1_on1 : want_q2_on1;
        const SearchResult& b = first ? want_q1_on2 : want_q2_on2;
        const auto same = [](const SearchResult& got, const SearchResult& w) {
          if (got.topk.size() != w.topk.size()) return false;
          for (size_t j = 0; j < got.topk.size(); ++j) {
            if (got.topk[j].set != w.topk[j].set ||
                got.topk[j].score != w.topk[j].score) {
              return false;
            }
          }
          return true;
        };
        if (!same(r.value(), a) && !same(r.value(), b)) ++mismatches;
      }
    });
  }
  std::thread swapper([&] {
    bool to_second = true;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.SwapSnapshot(to_second ? snap2 : snap1);
      to_second = !to_second;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace koios::serve
