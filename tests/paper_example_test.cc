// Reproduces the paper's worked example (Fig. 1 / Examples 1-2): vanilla,
// fuzzy, and semantic overlap disagree on the top-1 result, and greedy
// matching fails where exact matching succeeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/text/dictionary.h"
#include "koios/text/qgram.h"
#include "test_util.h"

namespace koios {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto intern = [this](const std::vector<std::string>& tokens) {
      std::vector<TokenId> ids;
      for (const auto& t : tokens) ids.push_back(dict_.Intern(t));
      return ids;
    };
    q_ = intern({"LA", "Seattle", "Columbia", "Blaine", "BigApple",
                 "Charleston"});
    c1_ = intern({"LA", "Blain", "Appleton", "MtPleasant", "Lexington",
                  "WestCoast"});
    c2_ = intern({"LA", "Sacramento", "Southern", "Blain", "SC", "Minnesota",
                  "NewYorkCity"});

    // Semantic similarities from Fig. 1 (edges >= 0.7 shown in the paper).
    auto set = [this](const char* a, const char* b, Score s) {
      semantic_.Set(dict_.Lookup(a), dict_.Lookup(b), s);
    };
    // Q x C1 edges.
    set("Blaine", "Blain", 0.99);
    set("Seattle", "MtPleasant", 0.7);
    set("Columbia", "Lexington", 0.7);
    set("Charleston", "Lexington", 0.7);
    set("LA", "WestCoast", 0.75);
    // Q x C2 edges.
    set("Seattle", "Sacramento", 0.81);
    set("LA", "Southern", 0.75);
    set("Columbia", "SC", 0.85);
    set("Columbia", "Southern", 0.5);  // below alpha, must not contribute
    set("Charleston", "SC", 0.8);
    set("Charleston", "Southern", 0.7);
    set("BigApple", "NewYorkCity", 0.9);
    set("Blaine", "Blain", 0.99);
    set("Seattle", "Minnesota", 0.8);
  }

  text::Dictionary dict_;
  testing::TableSimilarity semantic_;
  std::vector<TokenId> q_, c1_, c2_;
};

TEST_F(PaperExampleTest, VanillaOverlapTiesBothCandidates) {
  index::SetCollection sets;
  sets.AddSet(c1_);
  sets.AddSet(c2_);
  std::vector<TokenId> sorted_q = q_;
  std::sort(sorted_q.begin(), sorted_q.end());
  EXPECT_EQ(sets.VanillaOverlap(sorted_q, 0), 1u);  // only LA
  EXPECT_EQ(sets.VanillaOverlap(sorted_q, 1), 1u);  // only LA
}

TEST_F(PaperExampleTest, FuzzyJaccardPrefersWrongCandidate) {
  // With Jaccard on 3-grams, Blaine~Blain = 3/4 and BigApple~Appleton = 1/3
  // (paper Fig. 1), so C1 wins the fuzzy comparison even though C2 is the
  // semantically right answer.
  EXPECT_NEAR(text::QGramJaccard("Blaine", "Blain"), 0.75, 1e-12);
  EXPECT_NEAR(text::QGramJaccard("BigApple", "Appleton"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(text::QGramJaccard("BigApple", "NewYorkCity"), 0.0, 1e-12);

  sim::JaccardQGramSimilarity fuzzy(&dict_, 3);
  const Score fuzzy_c1 =
      matching::SemanticOverlap(q_, c1_, fuzzy, /*alpha=*/0.3);
  const Score fuzzy_c2 =
      matching::SemanticOverlap(q_, c2_, fuzzy, /*alpha=*/0.3);
  EXPECT_GT(fuzzy_c1, fuzzy_c2);  // fuzzy ranks C1 first — the wrong call
}

TEST_F(PaperExampleTest, SemanticOverlapScoresMatchPaper) {
  const Score so_c1 = matching::SemanticOverlap(q_, c1_, semantic_, 0.7);
  const Score so_c2 = matching::SemanticOverlap(q_, c2_, semantic_, 0.7);
  // Paper: Semantic-O(Q, C1) = 4.09 wait—4.09 uses LA=1 + Blain=.99 +
  // WestCoast edge replaced... compute: LA(1) + Blaine-Blain(.99) +
  // Seattle-MtPleasant(.7) + Columbia-or-Charleston-Lexington(.7) = 3.39;
  // plus LA can't double-match. Optimal adds Charleston-Lexington OR
  // Columbia-Lexington (one of them) and LA-WestCoast is blocked by LA-LA.
  // The paper reports 4.09 = 1 + .99 + .7 + .7 + .7: it matches LA->LA,
  // Blaine->Blain, Seattle->MtPleasant, Columbia->Lexington, and
  // Charleston->WestCoast? Fig. 1 shows Charleston--Lexington and LA edges;
  // the exact decomposition is not fully legible from the figure, so this
  // test asserts the *ranking* and the C2 score, which is unambiguous.
  EXPECT_GT(so_c2, so_c1);  // semantic overlap ranks C2 first (Example 2)
  // C2: LA(1) + BigApple-NewYorkCity(.9) + Columbia-SC(.85) +
  //     Seattle-Sacramento(.81) + Charleston-Southern(.7) wait Minnesota...
  // Optimal matching: LA->LA 1.0, Blaine->Blain .99, BigApple->NYC .9,
  // Columbia->SC .85, Seattle->Sacramento .81 (or Minnesota .8),
  // Charleston->Southern .7 => 5.25. The paper's 4.49 uses only the edges
  // drawn in its figure; we assert consistency with our table instead.
  EXPECT_NEAR(so_c2, 5.25, 1e-9);
}

TEST_F(PaperExampleTest, GreedyMatchingIsSuboptimalOnC2) {
  // Example 2: "a greedy matching approach ... will fail to rank C2 above
  // C1" in the paper's edge table. With our full edge table greedy on C2
  // must not exceed the exact score.
  const Score greedy_c2 =
      matching::GreedySemanticOverlap(q_, c2_, semantic_, 0.7);
  const Score exact_c2 = matching::SemanticOverlap(q_, c2_, semantic_, 0.7);
  EXPECT_LE(greedy_c2, exact_c2 + 1e-12);
}

TEST_F(PaperExampleTest, KoiosTop1ReturnsC2) {
  index::SetCollection sets;
  const SetId c1_id = sets.AddSet(c1_);
  const SetId c2_id = sets.AddSet(c2_);
  (void)c1_id;
  std::vector<TokenId> vocab;
  for (TokenId t = 0; t < dict_.size(); ++t) vocab.push_back(t);
  sim::ExactKnnIndex index(vocab, &semantic_);
  core::KoiosSearcher searcher(&sets, &index);
  core::SearchParams params;
  params.k = 1;
  params.alpha = 0.7;
  const auto result = searcher.Search(q_, params);
  ASSERT_EQ(result.topk.size(), 1u);
  EXPECT_EQ(result.topk[0].set, c2_id);
  EXPECT_NEAR(result.topk[0].score, 5.25, 1e-9);
}

TEST_F(PaperExampleTest, GreedyExampleFromFig1IsReproducible) {
  // The classic greedy failure of Example 2 in miniature: greedy takes the
  // heaviest edge and blocks the better cross assignment.
  testing::TableSimilarity sim;
  sim.Set(0, 10, 1.0);
  sim.Set(0, 11, 0.9);
  sim.Set(1, 10, 0.9);
  const std::vector<TokenId> q = {0, 1};
  const std::vector<TokenId> c = {10, 11};
  EXPECT_NEAR(matching::GreedySemanticOverlap(q, c, sim, 0.7), 1.0, 1e-12);
  EXPECT_NEAR(matching::SemanticOverlap(q, c, sim, 0.7), 1.8, 1e-12);
}

}  // namespace
}  // namespace koios
