// serve::LatencyRecorder: nearest-rank percentiles, lossless Merge, and
// the summary rendering the benches print.
#include <gtest/gtest.h>

#include "koios/serve/latency_recorder.h"

namespace koios::serve {
namespace {

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.Percentile(50), 0.0);
  EXPECT_EQ(r.Mean(), 0.0);
  EXPECT_EQ(r.Max(), 0.0);
}

TEST(LatencyRecorderTest, NearestRankPercentiles) {
  LatencyRecorder r;
  // 1..100 ms, recorded out of order.
  for (int i = 100; i >= 1; --i) r.Record(i / 1000.0);
  ASSERT_EQ(r.count(), 100u);
  // Nearest rank over n=100: p50 is the 50th smallest, p99 the 99th.
  EXPECT_DOUBLE_EQ(r.Percentile(50), 0.050);
  EXPECT_DOUBLE_EQ(r.Percentile(95), 0.095);
  EXPECT_DOUBLE_EQ(r.Percentile(99), 0.099);
  EXPECT_DOUBLE_EQ(r.Percentile(100), 0.100);
  EXPECT_DOUBLE_EQ(r.Percentile(0), 0.001);
  EXPECT_DOUBLE_EQ(r.Percentile(1), 0.001);
  EXPECT_NEAR(r.Mean(), 0.0505, 1e-12);
}

TEST(LatencyRecorderTest, SingleSampleEveryPercentile) {
  LatencyRecorder r;
  r.Record(0.25);
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(r.Percentile(p), 0.25) << "p=" << p;
  }
}

TEST(LatencyRecorderTest, MergeIsLossless) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 50; ++i) a.Record(i / 1000.0);
  for (int i = 51; i <= 100; ++i) b.Record(i / 1000.0);
  // Interleave a percentile read between merges: sorting must not corrupt
  // later appends.
  EXPECT_DOUBLE_EQ(a.Percentile(100), 0.050);
  a.Merge(b);
  ASSERT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Percentile(50), 0.050);
  EXPECT_DOUBLE_EQ(a.Percentile(99), 0.099);
  // Merging an empty recorder is a no-op.
  LatencyRecorder empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 100u);
}

TEST(LatencyRecorderTest, EwmaSeedsAndTracks) {
  LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.EwmaSeconds(), 0.0);
  r.Record(0.010);  // first sample seeds the EWMA directly
  EXPECT_DOUBLE_EQ(r.EwmaSeconds(), 0.010);
  r.Record(0.020);  // alpha = 0.2: 0.2*0.020 + 0.8*0.010
  EXPECT_DOUBLE_EQ(r.EwmaSeconds(), 0.012);
  // A regime shift dominates within a handful of samples, unlike Mean().
  for (int i = 0; i < 30; ++i) r.Record(0.100);
  EXPECT_GT(r.EwmaSeconds(), 0.09);
  EXPECT_LT(r.Mean(), 0.1);
}

TEST(LatencyRecorderTest, MergeBlendsEwmaByCount) {
  LatencyRecorder a, b;
  a.Record(0.010);
  b.Record(0.030);
  b.Record(0.030);
  a.Merge(b);  // (1*0.010 + 2*0.030) / 3
  EXPECT_NEAR(a.EwmaSeconds(), 0.070 / 3.0, 1e-12);
  // Merging into an empty recorder adopts the other side's EWMA.
  LatencyRecorder c;
  c.Merge(a);
  EXPECT_DOUBLE_EQ(c.EwmaSeconds(), a.EwmaSeconds());
}

TEST(LatencyRecorderTest, SummaryMentionsTail) {
  LatencyRecorder r;
  r.Record(0.001);
  r.Record(0.002);
  const std::string summary = r.Summary();
  EXPECT_NE(summary.find("p99"), std::string::npos);
  EXPECT_NE(summary.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace koios::serve
