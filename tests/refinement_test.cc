#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "koios/core/edge_cache.h"
#include "koios/core/refinement.h"
#include "koios/index/inverted_index.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/token_stream.h"
#include "test_util.h"

namespace koios::core {
namespace {

struct RefinementHarness {
  explicit RefinementHarness(testing::RandomWorkload* w, std::vector<TokenId> q,
                             Score alpha)
      : workload(w),
        query(std::move(q)),
        inverted(w->corpus.sets),
        stream(query, w->index.get(), alpha,
               [this](TokenId t) { return inverted.InVocabulary(t); }),
        cache(&stream) {}

  RefinementOutput Run(const SearchParams& params, SearchStats* stats) {
    RefinementPhase phase(&workload->corpus.sets, &inverted, query.size(),
                          params);
    return phase.Run(&cache, stats);
  }

  testing::RandomWorkload* workload;
  std::vector<TokenId> query;
  index::InvertedIndex inverted;
  sim::TokenStream stream;
  EdgeCache cache;
};

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

TEST(RefinementTest, SurvivorsContainEveryTrueTopKSet) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 501);
  const auto query = QueryOf(w, 4);
  const Score alpha = 0.8;
  RefinementHarness harness(&w, query, alpha);
  SearchParams params;
  params.k = 5;
  params.alpha = alpha;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);

  const auto oracle =
      testing::OracleRanking(w.corpus.sets, query, *w.sim, alpha);
  const Score theta_star = testing::OracleKthScore(oracle, params.k);
  std::set<SetId> survivor_ids;
  for (const auto& s : out.survivors) survivor_ids.insert(s.set());
  // No set scoring strictly above θ*k may be refinement-pruned; ties may
  // legitimately go either way.
  for (const auto& [id, so] : oracle) {
    if (so > theta_star + 1e-9) {
      EXPECT_TRUE(survivor_ids.count(id))
          << "true top set " << id << " (SO " << so << ") pruned";
    }
  }
}

TEST(RefinementTest, BoundsBracketTrueScore) {
  auto w = testing::MakeRandomWorkload(80, 400, 5, 18, 502);
  const auto query = QueryOf(w, 7);
  const Score alpha = 0.75;
  RefinementHarness harness(&w, query, alpha);
  SearchParams params;
  params.k = 10;
  params.alpha = alpha;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);
  for (const auto& state : out.survivors) {
    const Score so = matching::SemanticOverlap(
        query, w.corpus.sets.Tokens(state.set()), *w.sim, alpha);
    EXPECT_LE(state.partial_score(), so + 1e-9) << "LB above SO";
    EXPECT_GE(state.UpperBound(out.last_sim) + 1e-9, so) << "UB below SO";
    EXPECT_GE(state.partial_score() + 1e-9, so / 2.0) << "greedy guarantee";
  }
}

TEST(RefinementTest, LbInitializedWithVanillaOverlap) {
  // A candidate set sharing elements with the query must have LB at least
  // its vanilla overlap (self matches arrive first at sim 1.0).
  auto w = testing::MakeRandomWorkload(60, 300, 8, 20, 503);
  const auto query = QueryOf(w, 2);
  std::vector<TokenId> sorted_query = query;
  std::sort(sorted_query.begin(), sorted_query.end());
  RefinementHarness harness(&w, query, 0.8);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);
  for (const auto& state : out.survivors) {
    const size_t vanilla =
        w.corpus.sets.VanillaOverlap(sorted_query, state.set());
    EXPECT_GE(state.partial_score() + 1e-9, static_cast<Score>(vanilla))
        << "set " << state.set();
  }
}

TEST(RefinementTest, FiltersOnlyReduceSurvivors) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 504);
  const auto query = QueryOf(w, 11);
  RefinementHarness harness(&w, query, 0.8);
  SearchParams with, without;
  with.k = without.k = 10;
  with.alpha = without.alpha = 0.8;
  without.use_iub_filter = false;
  SearchStats s1, s2;
  const auto filtered = harness.Run(with, &s1);
  const auto unfiltered = harness.Run(without, &s2);
  EXPECT_LE(filtered.survivors.size(), unfiltered.survivors.size());
  EXPECT_GT(s1.iub_filtered, 0u);
  EXPECT_EQ(s2.iub_filtered, 0u);
  EXPECT_EQ(s1.candidates, s2.candidates);
}

TEST(RefinementTest, BucketAndNaiveIubAgreeOnSurvivorSets) {
  // The bucketized filter is an *implementation* of the naive per-tuple
  // scan; both must prune exactly the same sets.
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 505);
  const auto query = QueryOf(w, 9);
  RefinementHarness harness(&w, query, 0.78);
  SearchParams bucketed, naive;
  bucketed.k = naive.k = 8;
  bucketed.alpha = naive.alpha = 0.78;
  naive.use_bucket_index = false;
  SearchStats s1, s2;
  const auto a = harness.Run(bucketed, &s1);
  const auto b = harness.Run(naive, &s2);
  std::set<SetId> sa, sb;
  for (const auto& s : a.survivors) sa.insert(s.set());
  for (const auto& s : b.survivors) sb.insert(s.set());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(s1.iub_filtered, s2.iub_filtered);
}

TEST(RefinementTest, ThetaLbNeverExceedsThetaStar) {
  auto w = testing::MakeRandomWorkload(90, 400, 5, 20, 506);
  const auto query = QueryOf(w, 3);
  const Score alpha = 0.8;
  RefinementHarness harness(&w, query, alpha);
  SearchParams params;
  params.k = 7;
  params.alpha = alpha;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);
  const auto oracle =
      testing::OracleRanking(w.corpus.sets, query, *w.sim, alpha);
  EXPECT_LE(out.llb.Bottom(),
            testing::OracleKthScore(oracle, params.k) + 1e-9);
}

TEST(RefinementTest, EmptyStreamYieldsNoCandidates) {
  auto w = testing::MakeRandomWorkload(50, 300, 5, 15, 507);
  // Query of one token far outside the vocabulary: no self match, no edges.
  RefinementHarness harness(&w, {static_cast<TokenId>(9'999'999)}, 0.8);
  SearchParams params;
  params.alpha = 0.8;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);
  EXPECT_TRUE(out.survivors.empty());
  EXPECT_EQ(stats.candidates, 0u);
}

TEST(RefinementTest, StatsCountsAreConsistent) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 508);
  const auto query = QueryOf(w, 1);
  RefinementHarness harness(&w, query, 0.8);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  SearchStats stats;
  const RefinementOutput out = harness.Run(params, &stats);
  EXPECT_EQ(stats.candidates, stats.iub_filtered + out.survivors.size());
  EXPECT_EQ(stats.stream_tuples, harness.cache.tuples().size());
  EXPECT_GT(stats.postprocess_sets, 0u);
}

}  // namespace
}  // namespace koios::core
