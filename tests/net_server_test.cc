// koios_serverd's front-end, end to end over real loopback sockets
// (ISSUE 8): results through the wire must be bit-identical to an
// in-process serial KoiosSearcher, all three dialects (binary / JSON
// lines / HTTP) must answer on one listener, the robustness defenses
// (oversize, connection cap, slow-loris, mid-stream disconnect) must shed
// exactly one connection each, and graceful drain must finish in-flight
// work. Ports are always ephemeral (port 0) so parallel ctest is safe.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/net/client.h"
#include "koios/net/engine_slot.h"
#include "koios/net/protocol.h"
#include "koios/net/server.h"
#include "koios/net/socket.h"
#include "koios/serve/query_engine.h"
#include "koios/util/metric_registry.h"
#include "test_util.h"

namespace koios::net {
namespace {

using core::KoiosSearcher;
using core::ResultEntry;
using core::SearchParams;
using core::SearchResult;

struct ServerFixture {
  testing::RandomWorkload workload;
  std::unique_ptr<KoiosSearcher> serial;
  EngineSlot slot;
  util::MetricRegistry registry;
  std::unique_ptr<Server> server;

  std::vector<TokenId> QueryFor(size_t i) const {
    const auto tokens = workload.corpus.sets.Tokens(
        static_cast<SetId>((i * 13) % workload.corpus.sets.size()));
    return {tokens.begin(), tokens.end()};
  }
};

// Heap-allocated: the fixture is self-referential (engine and server
// borrow the workload, slot, and registry by address), so it must not move.
std::unique_ptr<ServerFixture> MakeServer(ServerOptions options = {},
                                          uint64_t seed = 12001,
                                          size_t engine_threads = 2,
                                          bool with_engine = true) {
  auto owner = std::make_unique<ServerFixture>();
  ServerFixture& f = *owner;
  f.workload = testing::MakeRandomWorkload(120, 500, 5, 20, seed);
  f.serial = std::make_unique<KoiosSearcher>(&f.workload.corpus.sets,
                                             f.workload.index.get());
  if (with_engine) {
    serve::EngineOptions engine_options;
    engine_options.num_threads = engine_threads;
    f.slot.Set(std::make_shared<serve::QueryEngine>(
        &f.workload.corpus.sets, f.workload.index.get(), engine_options));
  }
  options.port = 0;
  f.server = std::make_unique<Server>(&f.slot, &f.registry, options);
  EXPECT_TRUE(f.server->Start().ok());
  return owner;
}

void ExpectSameTopk(const std::vector<ResultEntry>& got,
                    const SearchResult& want, const char* label) {
  ASSERT_EQ(got.size(), want.topk.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].set, want.topk[i].set) << label << " entry " << i;
    // Bit-identical across the wire: the protocol memcpy's the doubles,
    // so == is the right comparison, not a tolerance.
    EXPECT_EQ(got[i].score, want.topk[i].score) << label << " entry " << i;
    EXPECT_EQ(got[i].exact, want.topk[i].exact) << label << " entry " << i;
  }
}

TEST(NetServerTest, BinarySearchMatchesSerialBitForBit) {
  std::unique_ptr<ServerFixture> owner = MakeServer();
  ServerFixture& f = *owner;
  auto client = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Ping().ok());

  SearchParams params;
  params.num_threads = 1;
  const size_t ks[] = {1, 5, 10};
  for (size_t i = 0; i < 12; ++i) {
    const std::vector<TokenId> query = f.QueryFor(i);
    params.k = ks[i % 3];
    auto got = client.value().Search(query, static_cast<uint32_t>(params.k),
                                     params.alpha, 0);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameTopk(got.value(), f.serial->Search(query, params), "binary");
  }
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.responses_ok, 12u);  // ping is liveness, not a query
  EXPECT_EQ(stats.responses_error, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServerTest, SearchManyStreamsOneFramePerQueryInCompletionOrder) {
  std::unique_ptr<ServerFixture> owner = MakeServer();
  ServerFixture& f = *owner;
  auto client = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  std::vector<std::vector<TokenId>> queries;
  for (size_t i = 0; i < 16; ++i) queries.push_back(f.QueryFor(i));

  std::vector<bool> seen(queries.size(), false);
  size_t frames = 0;
  util::Status status = client.value().SearchMany(
      queries, 5, 0.8, 0, [&](const ResponseFrame& frame) {
        ++frames;
        ASSERT_EQ(frame.code, WireCode::kOk)
            << ResponseToStatus(frame).ToString();
        ASSERT_LT(frame.query_index, queries.size());
        EXPECT_FALSE(seen[frame.query_index]) << "duplicate frame";
        seen[frame.query_index] = true;
        SearchParams params;
        params.k = 5;
        params.num_threads = 1;
        ExpectSameTopk(frame.results,
                       f.serial->Search(queries[frame.query_index], params),
                       "batch");
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(frames, queries.size());  // exactly one frame per query
}

TEST(NetServerTest, JsonLineModeAnswersInSubmissionOrder) {
  std::unique_ptr<ServerFixture> owner = MakeServer();
  ServerFixture& f = *owner;
  auto sock = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);

  std::string lines;
  for (size_t i = 0; i < 3; ++i) {
    lines += "{\"tokens\":[";
    const std::vector<TokenId> query = f.QueryFor(i);
    for (size_t t = 0; t < query.size(); ++t) {
      if (t > 0) lines += ',';
      lines += std::to_string(query[t]);
    }
    lines += "],\"k\":5}\n";
  }
  ASSERT_TRUE(WriteAll(sock.value().fd(), lines.data(), lines.size(), deadline)
                  .ok());

  std::string response;
  size_t newlines = 0;
  while (newlines < 3) {
    char c = 0;
    ASSERT_TRUE(ReadExact(sock.value().fd(), &c, 1, deadline).ok());
    response.push_back(c);
    if (c == '\n') ++newlines;
  }
  // Three ok lines, in submission order (JSON mode is head-of-line).
  size_t pos = 0;
  for (size_t i = 0; i < 3; ++i) {
    const size_t eol = response.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = response.substr(pos, eol - pos);
    EXPECT_EQ(line.find("{\"status\":\"ok\""), 0u) << line;
    SearchParams params;
    params.k = 5;
    params.num_threads = 1;
    const SearchResult want = f.serial->Search(f.QueryFor(i), params);
    if (!want.topk.empty()) {
      EXPECT_NE(
          line.find("\"set\":" + std::to_string(want.topk[0].set)),
          std::string::npos)
          << "line " << i << " should lead with the serial top-1: " << line;
    }
    pos = eol + 1;
  }

  // A malformed line gets a clean invalid_argument (strict parser), and
  // the connection survives for the next request.
  const std::string bad = "{\"tokens\":[1],\"aplha\":0.5}\n";
  ASSERT_TRUE(WriteAll(sock.value().fd(), bad.data(), bad.size(), deadline)
                  .ok());
  std::string error_line;
  for (;;) {
    char c = 0;
    ASSERT_TRUE(ReadExact(sock.value().fd(), &c, 1, deadline).ok());
    if (c == '\n') break;
    error_line.push_back(c);
  }
  EXPECT_NE(error_line.find("\"status\":\"invalid_argument\""),
            std::string::npos)
      << error_line;
  EXPECT_NE(error_line.find("aplha"), std::string::npos) << error_line;
}

// JSON responses carry no query index, so a client correlates them to its
// requests strictly by order. A malformed line PIPELINED behind a valid
// query must not have its (immediately-known) error jump ahead of the
// valid query's (engine-computed) response — the parse error waits its
// turn in the head-of-line queue.
TEST(NetServerTest, JsonParseErrorKeepsItsPlaceInTheResponseOrder) {
  std::unique_ptr<ServerFixture> owner = MakeServer();
  ServerFixture& f = *owner;
  auto sock = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);

  std::string valid = "{\"tokens\":[";
  const std::vector<TokenId> query = f.QueryFor(2);
  for (size_t t = 0; t < query.size(); ++t) {
    if (t > 0) valid += ',';
    valid += std::to_string(query[t]);
  }
  valid += "],\"k\":3}\n";
  // One write: valid, malformed, valid. Expected responses, in order:
  // ok, invalid_argument, ok.
  const std::string lines =
      valid + "{\"tokens\":[1],\"aplha\":0.5}\n" + valid;
  ASSERT_TRUE(WriteAll(sock.value().fd(), lines.data(), lines.size(), deadline)
                  .ok());

  std::vector<std::string> responses;
  std::string current;
  while (responses.size() < 3) {
    char c = 0;
    ASSERT_TRUE(ReadExact(sock.value().fd(), &c, 1, deadline).ok());
    if (c == '\n') {
      responses.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  EXPECT_EQ(responses[0].find("{\"status\":\"ok\""), 0u) << responses[0];
  EXPECT_NE(responses[1].find("\"status\":\"invalid_argument\""),
            std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find("aplha"), std::string::npos) << responses[1];
  EXPECT_EQ(responses[2].find("{\"status\":\"ok\""), 0u) << responses[2];

  // The parse error counted as a protocol error + error response, but not
  // as a cancelled query, and the connection survived.
  const ServerStats stats = f.server->stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.queries_cancelled_on_disconnect, 0u);
}

TEST(NetServerTest, HttpEndpointsAnswerOnTheSameListener) {
  std::unique_ptr<ServerFixture> owner = MakeServer();
  ServerFixture& f = *owner;
  int code = 0;
  auto health = HttpGet("127.0.0.1", f.server->port(), "/healthz", &code);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(code, 200);
  EXPECT_EQ(health.value(), "ok\n");

  auto ready = HttpGet("127.0.0.1", f.server->port(), "/readyz", &code);
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(code, 200);
  EXPECT_EQ(ready.value(), "ready\n");

  auto metrics = HttpGet("127.0.0.1", f.server->port(), "/metrics", &code);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(code, 200);
  EXPECT_NE(metrics.value().find("koios_server_connections_accepted_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().find("koios_server_ready 1"), std::string::npos);

  auto missing = HttpGet("127.0.0.1", f.server->port(), "/nope", &code);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(code, 404);
}

TEST(NetServerTest, UnreadySlotShedsWithRetryHintAndReadyzSays503) {
  ServerOptions options;
  options.unavailable_retry_after_ms = 77;
  std::unique_ptr<ServerFixture> owner = MakeServer(options, 12002, 2, /*with_engine=*/false);
  ServerFixture& f = *owner;

  EXPECT_FALSE(f.server->ready());
  int code = 0;
  auto ready = HttpGet("127.0.0.1", f.server->port(), "/readyz", &code);
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(code, 503);
  auto health = HttpGet("127.0.0.1", f.server->port(), "/healthz", &code);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(code, 200);  // alive even though not ready

  auto client = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  auto result = client.value().Search({1, 2, 3}, 5, 0.8, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  ASSERT_TRUE(result.status().has_retry_after());
  EXPECT_EQ(result.status().retry_after_ms(), 77);

  // The readiness flip is zero-touch: install an engine, same listener
  // starts answering.
  serve::EngineOptions engine_options;
  engine_options.num_threads = 1;
  f.slot.Set(std::make_shared<serve::QueryEngine>(
      &f.workload.corpus.sets, f.workload.index.get(), engine_options));
  EXPECT_TRUE(f.server->ready());
  auto after = client.value().Search(f.QueryFor(0), 5, 0.8, 0);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(f.server->stats().unavailable_rejections, 1u);
}

TEST(NetServerTest, OversizedRequestIsRejectedFromTheHeader) {
  ServerOptions options;
  options.max_request_bytes = 1024;
  std::unique_ptr<ServerFixture> owner = MakeServer(options, 12003);
  ServerFixture& f = *owner;
  auto sock = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);

  // Header only: declares a 1 MiB body that is never sent. The server
  // must reject (and close) without waiting for the body.
  char header[kFrameHeaderBytes];
  header[0] = static_cast<char>(kFrameMagic);
  header[1] = static_cast<char>(Op::kSearch);
  const uint32_t body_len = 1u << 20;
  std::memcpy(header + 2, &body_len, sizeof body_len);
  ASSERT_TRUE(WriteAll(sock.value().fd(), header, sizeof header, deadline)
                  .ok());

  std::string raw;
  ASSERT_TRUE(ReadUntilClose(sock.value().fd(), &raw, 1 << 16, deadline).ok());
  ResponseFrame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseResponseFrame(raw.data(), raw.size(), 1 << 16, &consumed,
                               &frame, &error),
            ParseStatus::kOk)
      << error;
  EXPECT_EQ(frame.code, WireCode::kInvalidArgument);
  EXPECT_NE(frame.message.find("exceeds"), std::string::npos);
  EXPECT_EQ(f.server->stats().oversized_rejected, 1u);
}

TEST(NetServerTest, ConnectionCapClosesExtrasImmediately) {
  ServerOptions options;
  options.max_connections = 2;
  std::unique_ptr<ServerFixture> owner = MakeServer(options, 12004);
  ServerFixture& f = *owner;

  auto a = BlockingClient::Connect("127.0.0.1", f.server->port());
  auto b = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value().Ping().ok());  // both really accepted
  ASSERT_TRUE(b.value().Ping().ok());

  // The third TCP connect succeeds in the kernel (backlog), but the
  // server closes it at accept: its first round-trip must fail.
  auto c = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c.value().Ping().ok());
  EXPECT_GE(f.server->stats().connections_rejected_at_cap, 1u);

  // Capacity frees up when a held connection goes away.
  a = util::Status::InvalidArgument("drop a");  // destroys client a
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto d = BlockingClient::Connect("127.0.0.1", f.server->port());
    if (d.ok() && d.value().Ping().ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "cap never released after closing a connection";
}

// Satellite 1: a client killed mid-stream must cost exactly its own
// connection — the server survives, its remaining queries cancel cleanly,
// and the next client gets exact answers.
TEST(NetServerTest, KilledClientMidStreamCancelsItsQueriesAndServerSurvives) {
  std::unique_ptr<ServerFixture> owner = MakeServer({}, 12005, /*engine_threads=*/1);
  ServerFixture& f = *owner;
  auto victim = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(victim.ok());

  // A large pipelined batch on a 1-worker engine: most of it is still
  // queued when the client dies, and the finished frames the server keeps
  // writing hit a dead socket (the EPIPE path MSG_NOSIGNAL must absorb).
  RequestFrame frame;
  frame.op = Op::kSearchMany;
  frame.k = 5;
  frame.alpha = 0.8;
  for (size_t i = 0; i < 48; ++i) frame.queries.push_back(f.QueryFor(i));
  std::string wire;
  AppendRequestFrame(frame, &wire);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(WriteAll(victim.value().fd(), wire.data(), wire.size(), deadline)
                  .ok());
  // Read ONE response frame so the stream is established, then vanish.
  char first[kFrameHeaderBytes];
  ASSERT_TRUE(ReadExact(victim.value().fd(), first, sizeof first, deadline)
                  .ok());
  victim = util::Status::InvalidArgument("killed");  // hard close mid-stream

  // The disconnect must surface as cancellations, not a dead server.
  bool cancelled = false;
  for (int attempt = 0; attempt < 200 && !cancelled; ++attempt) {
    cancelled = f.server->stats().queries_cancelled_on_disconnect > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(cancelled) << "disconnect did not cancel in-flight queries";

  auto next = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(next.ok()) << "server died after mid-stream disconnect";
  SearchParams params;
  params.k = 5;
  params.num_threads = 1;
  auto got = next.value().Search(f.QueryFor(3), 5, 0.8, 0);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameTopk(got.value(), f.serial->Search(f.QueryFor(3), params),
                 "post-disconnect");
}

TEST(NetServerTest, SlowLorisConnectionIsClosedAtTheReadDeadline) {
  ServerOptions options;
  options.read_deadline = std::chrono::milliseconds(150);
  std::unique_ptr<ServerFixture> owner = MakeServer(options, 12006);
  ServerFixture& f = *owner;
  auto sock = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());

  // Three header bytes, then silence: an incomplete request held open.
  const char partial[3] = {static_cast<char>(kFrameMagic),
                           static_cast<char>(Op::kSearch), 0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(WriteAll(sock.value().fd(), partial, sizeof partial, deadline)
                  .ok());

  std::string raw;  // the server must hang up on us, well before 5s
  EXPECT_TRUE(ReadUntilClose(sock.value().fd(), &raw, 4096, deadline).ok());
  EXPECT_EQ(f.server->stats().slow_loris_closes, 1u);

  // And the defense is per-connection: the server still answers.
  auto client = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value().Ping().ok());
}

// Regression: a stalled-reader shed fired from INSIDE EmitResult (the
// bounded output buffer) calls Close, which clears c.pending while
// PollPendingQueries is still iterating it. The erase that used to follow
// unconditionally ran on the cleared vector (JSON) or through an
// invalidated iterator (binary). With a cap smaller than one response,
// the very first pipelined result trips the path; the server must shed
// the one connection, not corrupt its loop.
TEST(NetServerTest, ShedInsidePipelinedEmitCostsOnlyThatConnection) {
  ServerOptions options;
  options.max_output_buffer_bytes = 16;  // smaller than any query response
  std::unique_ptr<ServerFixture> owner =
      MakeServer(options, 12008, /*engine_threads=*/1);
  ServerFixture& f = *owner;

  auto victim = ConnectTcp("127.0.0.1", f.server->port(),
                           std::chrono::milliseconds(2000));
  ASSERT_TRUE(victim.ok());
  RequestFrame frame;
  frame.op = Op::kSearchMany;
  frame.k = 5;
  frame.alpha = 0.8;
  for (size_t i = 0; i < 8; ++i) frame.queries.push_back(f.QueryFor(i));
  std::string wire;
  AppendRequestFrame(frame, &wire);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(WriteAll(victim.value().fd(), wire.data(), wire.size(),
                       deadline)
                  .ok());

  bool shed = false;
  for (int attempt = 0; attempt < 500 && !shed; ++attempt) {
    shed = f.server->stats().stalled_reader_sheds > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(shed) << "tiny output bound never shed the batch connection";

  // The loop thread survived: pings still answer (a ping response fits
  // under the 16-byte bound; query responses would not).
  auto next = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(next.ok()) << "server died shedding a stalled reader";
  EXPECT_TRUE(next.value().Ping().ok());

  // And the same JSON-mode path: pipeline two lines, first emit sheds.
  const uint64_t sheds_before = f.server->stats().stalled_reader_sheds;
  auto json_victim = ConnectTcp("127.0.0.1", f.server->port(),
                                std::chrono::milliseconds(2000));
  ASSERT_TRUE(json_victim.ok());
  const std::string two_lines =
      "{\"tokens\":[1,2,3],\"k\":3}\n{\"tokens\":[4,5,6],\"k\":3}\n";
  ASSERT_TRUE(WriteAll(json_victim.value().fd(), two_lines.data(),
                       two_lines.size(), deadline)
                  .ok());
  shed = false;
  for (int attempt = 0; attempt < 500 && !shed; ++attempt) {
    shed = f.server->stats().stalled_reader_sheds > sheds_before;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(shed) << "JSON pipelined emit never shed";
  auto after = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(after.ok()) << "server died on the JSON shed path";
  EXPECT_TRUE(after.value().Ping().ok());
}

// Regression: JSON clients correlate responses strictly by line order, so
// an unavailable rejection (slot cleared / draining) raised while earlier
// pipelined queries are still in flight must wait its turn in the
// head-of-line queue — it used to be written immediately, jumping ahead
// and misattributing every response after it.
TEST(NetServerTest, JsonUnavailableRejectionKeepsItsPlaceInResponseOrder) {
  std::unique_ptr<ServerFixture> owner =
      MakeServer({}, 12009, /*engine_threads=*/1);
  ServerFixture& f = *owner;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);

  // Occupy the single worker with a long pipelined batch from another
  // connection so the JSON query below stays pending for a while.
  auto busy = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(busy.ok());
  RequestFrame frame;
  frame.op = Op::kSearchMany;
  frame.k = 5;
  frame.alpha = 0.8;
  for (size_t i = 0; i < 100; ++i) frame.queries.push_back(f.QueryFor(i));
  std::string wire;
  AppendRequestFrame(frame, &wire);
  ASSERT_TRUE(WriteAll(busy.value().fd(), wire.data(), wire.size(), deadline)
                  .ok());

  auto sock = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(2000));
  ASSERT_TRUE(sock.ok());
  std::string valid = "{\"tokens\":[";
  const std::vector<TokenId> query = f.QueryFor(1);
  for (size_t t = 0; t < query.size(); ++t) {
    if (t > 0) valid += ',';
    valid += std::to_string(query[t]);
  }
  valid += "],\"k\":3}\n";
  ASSERT_TRUE(WriteAll(sock.value().fd(), valid.data(), valid.size(),
                       deadline)
                  .ok());
  // Wait until the valid line is dispatched (the batch was request #1).
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (f.server->stats().requests >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(f.server->stats().requests, 2u);

  // Yank the slot (keeping the engine alive so in-flight work finishes):
  // the next line must be rejected kUnavailable — but BEHIND the pending
  // query, not ahead of it.
  std::shared_ptr<serve::QueryEngine> held = f.slot.Get();
  f.slot.Set(nullptr);
  const std::string second = "{\"tokens\":[7,8,9],\"k\":3}\n";
  ASSERT_TRUE(WriteAll(sock.value().fd(), second.data(), second.size(),
                       deadline)
                  .ok());

  std::vector<std::string> responses;
  std::string current;
  while (responses.size() < 2) {
    char c = 0;
    ASSERT_TRUE(ReadExact(sock.value().fd(), &c, 1, deadline).ok());
    if (c == '\n') {
      responses.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  // First line answers the first query (whatever the engine said, it is
  // NOT the slot-cleared rejection); the rejection is second, with its
  // retry hint intact.
  EXPECT_EQ(responses[0].find("no snapshot live yet"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("\"status\":\"unavailable\""),
            std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find("no snapshot live yet"), std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find("retry_after_ms"), std::string::npos)
      << responses[1];
  EXPECT_GE(f.server->stats().unavailable_rejections, 1u);
}

TEST(NetServerTest, DrainFinishesInFlightWorkThenStopsListening) {
  std::unique_ptr<ServerFixture> owner = MakeServer({}, 12007, /*engine_threads=*/1);
  ServerFixture& f = *owner;
  auto client = BlockingClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  std::vector<std::vector<TokenId>> queries;
  for (size_t i = 0; i < 24; ++i) queries.push_back(f.QueryFor(i));

  // Reader thread consumes the batch while the main thread drains.
  size_t ok_frames = 0;
  util::Status batch_status = util::Status::OK();
  std::thread reader([&] {
    batch_status = client.value().SearchMany(
        queries, 5, 0.8, 0, [&](const ResponseFrame& frame) {
          if (frame.code == WireCode::kOk) ++ok_frames;
        });
  });
  // Give the batch a moment to be admitted, then drain under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  f.server->Drain();
  reader.join();

  // Everything admitted before the drain completed and flushed.
  ASSERT_TRUE(batch_status.ok()) << batch_status.ToString();
  EXPECT_EQ(ok_frames, queries.size());
  EXPECT_TRUE(f.server->draining());
  EXPECT_FALSE(f.server->ready());

  // Drained means gone: the listener no longer accepts.
  auto late = ConnectTcp("127.0.0.1", f.server->port(),
                         std::chrono::milliseconds(500));
  if (late.ok()) {
    char byte = 0;
    const auto probe =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    EXPECT_FALSE(ReadExact(late.value().fd(), &byte, 1, probe).ok());
  }
}

}  // namespace
}  // namespace koios::net
