// MetricRegistry (ISSUE 8): the serving stack's metrics vocabulary.
// Registration must be idempotent with stable pointers, kind collisions
// must surface as nullptr instead of aliasing storage, histograms must
// bucket correctly (upper-bound inclusive, implicit +Inf), collection
// callbacks must refresh mirrored values at render time, and the text
// exposition must be stable, parseable Prometheus format.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "koios/util/metric_registry.h"

namespace koios::util {
namespace {

TEST(MetricRegistryTest, RegistrationIsIdempotentWithStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.RegisterCounter("koios_test_total", "help one");
  ASSERT_NE(a, nullptr);
  a->Add(7);
  Counter* b = registry.RegisterCounter("koios_test_total", "help two");
  EXPECT_EQ(a, b);  // same name, same metric, same storage
  EXPECT_EQ(b->Value(), 7u);

  Gauge* g = registry.RegisterGauge("koios_test_gauge", "");
  EXPECT_EQ(registry.RegisterGauge("koios_test_gauge", ""), g);
}

TEST(MetricRegistryTest, KindCollisionReturnsNullInsteadOfAliasing) {
  MetricRegistry registry;
  ASSERT_NE(registry.RegisterCounter("koios_name", ""), nullptr);
  EXPECT_EQ(registry.RegisterGauge("koios_name", ""), nullptr);
  EXPECT_EQ(registry.RegisterHistogram("koios_name", "", {1.0}), nullptr);
  // Find mirrors the kind discipline.
  EXPECT_NE(registry.FindCounter("koios_name"), nullptr);
  EXPECT_EQ(registry.FindGauge("koios_name"), nullptr);
  EXPECT_EQ(registry.FindCounter("koios_absent"), nullptr);
}

TEST(MetricRegistryTest, CounterIgnoresNothingAndGaugeMoves) {
  MetricRegistry registry;
  Counter* c = registry.RegisterCounter("koios_c_total", "");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->Value(), 5u);
  c->Set(3);  // mirror semantics: authoritative source says 3
  EXPECT_EQ(c->Value(), 3u);

  Gauge* g = registry.RegisterGauge("koios_g", "");
  g->Set(2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
}

TEST(MetricRegistryTest, HistogramBucketsAreUpperBoundInclusive) {
  MetricRegistry registry;
  Histogram* h =
      registry.RegisterHistogram("koios_h_seconds", "", {0.01, 0.1, 1.0});
  h->Observe(0.01);   // lands IN the 0.01 bucket (inclusive)
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(100.0);  // +Inf overflow
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_DOUBLE_EQ(h->Sum(), 100.56);
  EXPECT_EQ(h->CumulativeCount(0), 1u);  // <= 0.01
  EXPECT_EQ(h->CumulativeCount(1), 2u);  // <= 0.1
  EXPECT_EQ(h->CumulativeCount(2), 3u);  // <= 1.0
}

TEST(MetricRegistryTest, ExponentialLatencyBucketsAreStrictlyIncreasing) {
  const std::vector<double> bounds = ExponentialLatencyBuckets();
  ASSERT_GT(bounds.size(), 4u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at " << i;
  }
  EXPECT_LE(bounds.front(), 1e-3);  // covers sub-millisecond queries
  EXPECT_GE(bounds.back(), 10.0);   // and pathological stalls
}

TEST(MetricRegistryTest, CollectionCallbackRefreshesMirrorsAtRenderTime) {
  MetricRegistry registry;
  Counter* mirror = registry.RegisterCounter("koios_mirrored_total", "");
  std::atomic<uint64_t> authoritative{0};
  registry.AddCollectionCallback(
      [&] { mirror->Set(authoritative.load(std::memory_order_relaxed)); });

  authoritative.store(42);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("koios_mirrored_total 42"), std::string::npos) << text;
  EXPECT_EQ(mirror->Value(), 42u);

  authoritative.store(43);  // next scrape sees the new value, not a cache
  EXPECT_NE(registry.RenderText().find("koios_mirrored_total 43"),
            std::string::npos);
}

TEST(MetricRegistryTest, RenderTextIsPrometheusShaped) {
  MetricRegistry registry;
  registry.RegisterCounter("koios_requests_total", "Requests served")
      ->Add(2);
  registry.RegisterGauge("koios_ready", "Traffic-ready flag")->Set(1.0);
  Histogram* h =
      registry.RegisterHistogram("koios_latency_seconds", "Latency", {0.5});
  h->Observe(0.25);
  h->Observe(2.0);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP koios_requests_total Requests served"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE koios_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("koios_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE koios_ready gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE koios_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("koios_latency_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("koios_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("koios_latency_seconds_count 2"), std::string::npos);
  // Registration order is exposition order: stable scrapes diff cleanly.
  EXPECT_LT(text.find("koios_requests_total"), text.find("koios_ready"));
  EXPECT_LT(text.find("koios_ready"), text.find("koios_latency_seconds"));
}

TEST(MetricRegistryTest, ConcurrentMutationAndRenderIsSafe) {
  MetricRegistry registry;
  Counter* c = registry.RegisterCounter("koios_hot_total", "");
  Histogram* h = registry.RegisterHistogram("koios_hot_seconds", "",
                                            ExponentialLatencyBuckets());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        c->Increment();
        h->Observe(0.001);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string text = registry.RenderText();
    EXPECT_NE(text.find("koios_hot_total"), std::string::npos);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(c->Value(), h->Count());  // one observe per increment
}

TEST(MetricRegistryTest, LabeledSeriesGroupUnderOneHelpAndTypeBlock) {
  MetricRegistry registry;
  registry
      .RegisterCounter(LabeledMetricName("koios_req_total", "dialect", "bin"),
                       "Requests by dialect")
      ->Add(3);
  registry
      .RegisterCounter(LabeledMetricName("koios_req_total", "dialect", "json"),
                       "Requests by dialect")
      ->Add(5);

  const std::string text = registry.RenderText();
  // One HELP and one TYPE line for the base name, two series under them.
  size_t help_count = 0;
  for (size_t pos = text.find("# HELP koios_req_total");
       pos != std::string::npos;
       pos = text.find("# HELP koios_req_total", pos + 1)) {
    ++help_count;
  }
  EXPECT_EQ(help_count, 1u) << text;
  EXPECT_NE(text.find("# TYPE koios_req_total counter"), std::string::npos);
  EXPECT_NE(text.find("koios_req_total{dialect=\"bin\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("koios_req_total{dialect=\"json\"} 5"),
            std::string::npos);
}

TEST(MetricRegistryTest, LabeledHistogramMergesLabelsWithLe) {
  MetricRegistry registry;
  Histogram* h = registry.RegisterHistogram(
      LabeledMetricName("koios_lat_seconds", "phase", "parse"), "", {0.5});
  h->Observe(0.1);
  h->Observe(2.0);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("koios_lat_seconds_bucket{phase=\"parse\",le=\"0.5\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("koios_lat_seconds_bucket{phase=\"parse\",le=\"+Inf\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("koios_lat_seconds_count{phase=\"parse\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("koios_lat_seconds_sum{phase=\"parse\"} "),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE koios_lat_seconds histogram"),
            std::string::npos);
}

TEST(MetricRegistryTest, LabelValuesAndHelpTextAreEscaped) {
  // Label values escape backslash, quote, and newline per the Prometheus
  // text format; HELP lines escape backslash and newline.
  EXPECT_EQ(LabeledMetricName("m", "k", "a\"b"), "m{k=\"a\\\"b\"}");
  EXPECT_EQ(LabeledMetricName("m", "k", "a\\b"), "m{k=\"a\\\\b\"}");
  EXPECT_EQ(LabeledMetricName("m", "k", "a\nb"), "m{k=\"a\\nb\"}");

  MetricRegistry registry;
  registry.RegisterCounter("koios_esc_total", "line one\nline \\two")->Add(1);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP koios_esc_total line one\\nline \\\\two"),
            std::string::npos)
      << text;
  // The raw newline must NOT appear inside the HELP line.
  EXPECT_EQ(text.find("line one\nline"), std::string::npos);
}

TEST(MetricRegistryTest, SetSnapshotOverwritesBucketsAndRecomputesCount) {
  MetricRegistry registry;
  Histogram* h =
      registry.RegisterHistogram("koios_snap_seconds", "", {0.1, 1.0});
  h->Observe(0.05);  // stale organic observation, overwritten below
  h->SetSnapshot({4, 2, 1}, 3.25);  // buckets incl. +Inf slot
  EXPECT_EQ(h->Count(), 7u);
  EXPECT_DOUBLE_EQ(h->Sum(), 3.25);
  EXPECT_EQ(h->CumulativeCount(0), 4u);
  EXPECT_EQ(h->CumulativeCount(1), 6u);

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("koios_snap_seconds_bucket{le=\"+Inf\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("koios_snap_seconds_count 7"), std::string::npos);

  // A short vector (fewer slots than buckets) must not read out of range.
  h->SetSnapshot({9}, 1.0);
  EXPECT_EQ(h->CumulativeCount(0), 9u);
  EXPECT_EQ(h->Count(), 9u);
}

TEST(MetricRegistryTest, CallbackMayRegisterNewSeriesDuringRender) {
  // Dynamic labeled series (e.g. koios_phase_seconds{phase=...}) register
  // lazily from collection callbacks; callbacks run outside the registry
  // lock so this must not deadlock, and the new series must appear in the
  // SAME render that created it.
  MetricRegistry registry;
  int renders = 0;
  registry.AddCollectionCallback([&registry, &renders] {
    ++renders;
    registry
        .RegisterCounter(LabeledMetricName("koios_dyn_total", "round",
                                           std::to_string(renders)),
                         "Dynamic series")
        ->Set(static_cast<uint64_t>(renders));
  });
  const std::string first = registry.RenderText();
  EXPECT_NE(first.find("koios_dyn_total{round=\"1\"} 1"), std::string::npos)
      << first;
  const std::string second = registry.RenderText();
  EXPECT_NE(second.find("koios_dyn_total{round=\"1\"} 1"), std::string::npos);
  EXPECT_NE(second.find("koios_dyn_total{round=\"2\"} 2"), std::string::npos);
}

TEST(MetricRegistryTest, ConcurrentObserveVersusExposeOnLabeledHistogram) {
  MetricRegistry registry;
  Histogram* h = registry.RegisterHistogram(
      LabeledMetricName("koios_conc_seconds", "phase", "em"), "",
      ExponentialLatencyBuckets());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        h->Observe(0.002);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::string text = registry.RenderText();
    EXPECT_NE(text.find("koios_conc_seconds_bucket{phase=\"em\",le=\""),
              std::string::npos);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
}

}  // namespace
}  // namespace koios::util
