// Tests for the extension modules: many-to-one semantic overlap (the
// paper's §X future work), threshold search, and the MinHash-LSH index.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "koios/core/many_to_one.h"
#include "koios/core/searcher.h"
#include "koios/core/threshold_search.h"
#include "koios/data/string_corpus.h"
#include "koios/sim/minhash_index.h"
#include "test_util.h"

namespace koios::core {
namespace {

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

// ------------------------------------------------------------ many-to-one --

TEST(ManyToOneTest, SeparableMeasureMatchesDefinition) {
  testing::TableSimilarity sim;
  sim.Set(0, 10, 0.9);
  sim.Set(1, 10, 0.8);  // both query elements map to token 10
  sim.Set(2, 11, 0.75);
  const std::vector<TokenId> q = {0, 1, 2};
  const std::vector<TokenId> c = {10, 11};
  // 1:1 matching must choose between rows 0 and 1 for token 10.
  EXPECT_NEAR(matching::SemanticOverlap(q, c, sim, 0.7), 0.9 + 0.75, 1e-12);
  // Many-to-one takes every row's maximum.
  EXPECT_NEAR(ManyToOneOverlap(q, c, sim, 0.7), 0.9 + 0.8 + 0.75, 1e-12);
}

TEST(ManyToOneTest, DominatesOneToOneMeasure) {
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 1501);
  const auto q = QueryOf(w, 4);
  for (SetId id = 0; id < 30; ++id) {
    const Score one = matching::SemanticOverlap(
        q, w.corpus.sets.Tokens(id), *w.sim, 0.75);
    const Score many =
        ManyToOneOverlap(q, w.corpus.sets.Tokens(id), *w.sim, 0.75);
    EXPECT_GE(many + 1e-9, one) << "set " << id;
  }
}

TEST(ManyToOneTest, SearcherMatchesOracle) {
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 1502);
  ManyToOneSearcher searcher(&w.corpus.sets, w.index.get());
  for (SetId qid : {SetId{0}, SetId{33}}) {
    const auto q = QueryOf(w, qid);
    SearchParams params;
    params.k = 10;
    params.alpha = 0.8;
    const auto result = searcher.Search(q, params);

    // Oracle: many-to-one score of every set.
    std::vector<std::pair<SetId, Score>> oracle;
    for (SetId id = 0; id < w.corpus.sets.size(); ++id) {
      const Score so =
          ManyToOneOverlap(q, w.corpus.sets.Tokens(id), *w.sim, params.alpha);
      if (so > 0) oracle.emplace_back(id, so);
    }
    std::sort(oracle.begin(), oracle.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    const size_t expect = std::min<size_t>(params.k, oracle.size());
    ASSERT_EQ(result.topk.size(), expect);
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_NEAR(result.topk[i].score, oracle[i].second, 1e-6)
          << "rank " << i << " q " << qid;
    }
  }
}

TEST(ManyToOneTest, FilterTogglesPreserveExactness) {
  auto w = testing::MakeRandomWorkload(400, 800, 5, 30, 1503);
  ManyToOneSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 7);
  SearchParams with, without;
  with.k = without.k = 3;
  with.alpha = without.alpha = 0.75;
  without.use_iub_filter = false;
  const auto r1 = searcher.Search(q, with);
  const auto r2 = searcher.Search(q, without);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-9);
  }
}

TEST(ManyToOneTest, IubFilterPrunesDominatedCandidates) {
  // Engineered: the query has k exact clones in the repository, so the
  // running threshold reaches |Q| from the sim-1.0 self matches alone; any
  // other candidate has UB = |Q| * s < |Q| once s < 1 and must be pruned.
  testing::TableSimilarity sim;
  const std::vector<TokenId> clone = {0, 1, 2, 3, 4};
  index::SetCollection sets;
  sets.AddSet(clone);
  sets.AddSet(clone);
  sets.AddSet(clone);
  // Distractor sets related only through weak edges.
  for (TokenId t = 100; t < 130; t += 3) {
    sets.AddSet(std::vector<TokenId>{t, t + 1, t + 2});
    sim.Set(0, t, 0.85);
    sim.Set(1, t + 1, 0.8);
  }
  std::vector<TokenId> vocab;
  for (TokenId t = 0; t < 5; ++t) vocab.push_back(t);
  for (TokenId t = 100; t < 130; ++t) vocab.push_back(t);
  sim::ExactKnnIndex index(vocab, &sim);
  ManyToOneSearcher searcher(&sets, &index);
  SearchParams params;
  params.k = 3;
  params.alpha = 0.7;
  const auto result = searcher.Search(clone, params);
  ASSERT_EQ(result.topk.size(), 3u);
  for (const auto& e : result.topk) {
    EXPECT_NEAR(e.score, 5.0, 1e-9);  // the three clones
    EXPECT_LT(e.set, 3u);
  }
  EXPECT_GT(result.stats.iub_filtered, 0u);
}

TEST(ManyToOneTest, QuerySynonymNoiseScenario) {
  // The paper's motivating case: two query variants of the same entity
  // both map to one candidate element.
  testing::TableSimilarity sim;
  const TokenId usa_full = 0, usa_short = 1, usa = 10;
  sim.Set(usa_full, usa, 0.92);
  sim.Set(usa_short, usa, 0.95);
  const std::vector<TokenId> q = {usa_full, usa_short};
  const std::vector<TokenId> c = {usa};
  EXPECT_NEAR(ManyToOneOverlap(q, c, sim, 0.9), 1.87, 1e-12);
  EXPECT_NEAR(matching::SemanticOverlap(q, c, sim, 0.9), 0.95, 1e-12);
}

// ------------------------------------------------------- threshold search --

TEST(ThresholdSearchTest, MatchesOracleSelection) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 18, 1601);
  ThresholdSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 3);
  const Score alpha = 0.78;
  const auto oracle = testing::OracleRanking(w.corpus.sets, q, *w.sim, alpha);
  for (double theta : {1.0, 2.5, 5.0, 100.0}) {
    ThresholdParams params;
    params.theta = theta;
    params.alpha = alpha;
    const auto result = searcher.Search(q, params);
    std::set<SetId> expected;
    for (const auto& [id, so] : oracle) {
      if (so >= theta - 1e-9) expected.insert(id);
    }
    std::set<SetId> got;
    for (const auto& e : result) {
      got.insert(e.set);
      EXPECT_GE(e.score, theta - 1e-6);
    }
    EXPECT_EQ(got, expected) << "theta " << theta;
  }
}

TEST(ThresholdSearchTest, ScoresAreExactWhenVerified) {
  auto w = testing::MakeRandomWorkload(80, 350, 5, 15, 1602);
  ThresholdSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 11);
  ThresholdParams params;
  params.theta = 2.0;
  params.alpha = 0.8;
  params.verify_scores = true;
  const auto result = searcher.Search(q, params);
  for (const auto& e : result) {
    const Score truth = matching::SemanticOverlap(
        q, w.corpus.sets.Tokens(e.set), *w.sim, params.alpha);
    EXPECT_TRUE(e.exact);
    EXPECT_NEAR(e.score, truth, 1e-6);
  }
}

TEST(ThresholdSearchTest, LbAdmissionSkipsMatchings) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 18, 1603);
  ThresholdSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 5);
  ThresholdParams fast;
  fast.theta = 1.0;
  fast.alpha = 0.8;
  fast.verify_scores = false;  // allow LB admission to actually skip
  SearchStats stats;
  const auto result = searcher.Search(q, fast, &stats);
  EXPECT_GT(stats.no_em_skipped, 0u);
  for (const auto& e : result) {
    if (!e.exact) {
      // Reported LB must still certify membership.
      EXPECT_GE(e.score, fast.theta - 1e-9);
    }
  }
}

TEST(ThresholdSearchTest, HugeThetaReturnsOnlySelfLikeSets) {
  auto w = testing::MakeRandomWorkload(60, 300, 8, 16, 1604);
  ThresholdSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 9);
  ThresholdParams params;
  params.theta = static_cast<Score>(q.size());  // only perfect matches
  params.alpha = 0.8;
  const auto result = searcher.Search(q, params);
  ASSERT_GE(result.size(), 1u);  // the source set itself
  EXPECT_EQ(result[0].set, 9u);
}

// ----------------------------------------------------------- MinHash-LSH --

TEST(MinHashIndexTest, CollisionProbabilityShape) {
  data::StringCorpusSpec spec;
  spec.num_sets = 10;
  spec.num_base_words = 50;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);
  sim::MinHashIndexSpec mh;
  mh.num_bands = 16;
  mh.rows_per_band = 4;
  sim::MinHashIndex index(corpus.vocabulary, &jaccard, mh);
  // The S-curve must be monotone with the expected endpoints.
  EXPECT_LT(index.CollisionProbability(0.1), 0.1);
  EXPECT_GT(index.CollisionProbability(0.9), 0.99);
  EXPECT_LT(index.CollisionProbability(0.3), index.CollisionProbability(0.6));
}

TEST(MinHashIndexTest, FindsTypoVariantsWithHighRecall) {
  data::StringCorpusSpec spec;
  spec.num_sets = 50;
  spec.num_base_words = 200;
  spec.typos_per_word = 2;
  spec.seed = 77;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);
  sim::ExactKnnIndex exact(corpus.vocabulary, &jaccard);
  sim::MinHashIndexSpec mh;
  mh.num_bands = 32;
  mh.rows_per_band = 3;
  sim::MinHashIndex minhash(corpus.vocabulary, &jaccard, mh);

  size_t exact_total = 0, found = 0;
  for (size_t i = 0; i < 20 && i < corpus.vocabulary.size(); ++i) {
    const TokenId q = corpus.vocabulary[i * 3 % corpus.vocabulary.size()];
    std::set<TokenId> truth;
    exact.ResetCursors();
    while (auto n = exact.NextNeighbor(q, 0.5)) truth.insert(n->token);
    minhash.ResetCursors();
    while (auto n = minhash.NextNeighbor(q, 0.5)) found += truth.count(n->token);
    exact_total += truth.size();
  }
  ASSERT_GT(exact_total, 0u);
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(exact_total), 0.7)
      << found << "/" << exact_total;
}

TEST(MinHashIndexTest, DescendingOrderAndAlphaCutoff) {
  data::StringCorpusSpec spec;
  spec.num_sets = 30;
  spec.num_base_words = 100;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);
  sim::MinHashIndex index(corpus.vocabulary, &jaccard, {});
  Score prev = 1.0;
  while (auto n = index.NextNeighbor(corpus.vocabulary[0], 0.4)) {
    EXPECT_LE(n->sim, prev + 1e-12);
    EXPECT_GE(n->sim, 0.4);
    prev = n->sim;
  }
}

TEST(MinHashIndexTest, KoiosRunsOnMinHashStream) {
  // Full engine over the approximate index: results must be valid sets
  // with exact scores (exact w.r.t. the neighbors the index returned).
  data::StringCorpusSpec spec;
  spec.num_sets = 80;
  spec.num_base_words = 200;
  spec.seed = 5;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  sim::JaccardQGramSimilarity jaccard(&corpus.dict, 3);
  sim::MinHashIndexSpec mh;
  mh.num_bands = 24;
  mh.rows_per_band = 3;
  sim::MinHashIndex minhash(corpus.vocabulary, &jaccard, mh);
  KoiosSearcher searcher(&corpus.sets, &minhash);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.5;
  std::vector<TokenId> q(corpus.sets.Tokens(2).begin(),
                         corpus.sets.Tokens(2).end());
  const auto result = searcher.Search(q, params);
  ASSERT_FALSE(result.topk.empty());
  EXPECT_EQ(result.topk[0].set, 2u);  // self-match flows via vocabulary
  EXPECT_NEAR(result.topk[0].score, static_cast<Score>(q.size()), 1e-6);
}

}  // namespace
}  // namespace koios::core
