#include <gtest/gtest.h>

#include "koios/sim/cosine_similarity.h"
#include "koios/text/qgram.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/text/dictionary.h"
#include "test_util.h"

namespace koios::sim {
namespace {

// ------------------------------------------------ CosineEmbeddingSimilarity --

TEST(CosineSimilarityTest, IdenticalTokensAlwaysOne) {
  embedding::EmbeddingStore store(4);
  CosineEmbeddingSimilarity sim(&store);
  // Even for tokens with no embedding (Def. 1 requires sim(x, x) = 1).
  EXPECT_DOUBLE_EQ(sim.Similarity(42, 42), 1.0);
}

TEST(CosineSimilarityTest, NegativeCosineClampedToZero) {
  embedding::EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  store.Add(1, std::vector<float>{-1.0f, 0.0f});
  CosineEmbeddingSimilarity sim(&store);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 1), 0.0);
}

TEST(CosineSimilarityTest, OovPairsScoreZero) {
  embedding::EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  CosineEmbeddingSimilarity sim(&store);
  EXPECT_DOUBLE_EQ(sim.Similarity(0, 99), 0.0);
}

TEST(CosineSimilarityTest, AlphaClampHelper) {
  embedding::EmbeddingStore store(2);
  store.Add(0, std::vector<float>{1.0f, 0.0f});
  store.Add(1, std::vector<float>{0.8f, 0.6f});  // cosine 0.8
  CosineEmbeddingSimilarity sim(&store);
  EXPECT_NEAR(sim.SimilarityAlpha(0, 1, 0.75), 0.8, 1e-6);
  EXPECT_DOUBLE_EQ(sim.SimilarityAlpha(0, 1, 0.85), 0.0);
}

TEST(CosineSimilarityTest, SymmetricOnRandomPairs) {
  auto w = testing::MakeRandomWorkload(10, 200, 5, 10, 808);
  for (TokenId a = 0; a < 50; ++a) {
    for (TokenId b = a + 1; b < 50; b += 7) {
      EXPECT_DOUBLE_EQ(w.sim->Similarity(a, b), w.sim->Similarity(b, a));
    }
  }
}

// ------------------------------------------------- JaccardQGramSimilarity --

TEST(JaccardSimilarityTest, MatchesDirectComputation) {
  text::Dictionary dict;
  const TokenId a = dict.Intern("squirrel");
  const TokenId b = dict.Intern("squirrell");
  JaccardQGramSimilarity sim(&dict, 3);
  EXPECT_NEAR(sim.Similarity(a, b), text::QGramJaccard("squirrel", "squirrell"),
              1e-12);
}

TEST(JaccardSimilarityTest, IdenticalTokenIsOne) {
  text::Dictionary dict;
  const TokenId a = dict.Intern("konstantin");
  JaccardQGramSimilarity sim(&dict, 3);
  EXPECT_DOUBLE_EQ(sim.Similarity(a, a), 1.0);
}

TEST(JaccardSimilarityTest, RangeWithinUnitInterval) {
  text::Dictionary dict;
  const char* words[] = {"leeds", "sheffield", "blain", "blaine", "appleton",
                         "bigapple", "a", "ab"};
  for (const char* word : words) dict.Intern(word);
  JaccardQGramSimilarity sim(&dict, 3);
  for (TokenId a = 0; a < dict.size(); ++a) {
    for (TokenId b = 0; b < dict.size(); ++b) {
      const Score s = sim.Similarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_DOUBLE_EQ(s, sim.Similarity(b, a));
    }
  }
}

TEST(JaccardSimilarityTest, GramsOfExposesSortedGrams) {
  text::Dictionary dict;
  const TokenId a = dict.Intern("blaine");
  JaccardQGramSimilarity sim(&dict, 3);
  const auto& grams = sim.GramsOf(a);
  EXPECT_EQ(grams.size(), 4u);
  EXPECT_TRUE(std::is_sorted(grams.begin(), grams.end()));
}

}  // namespace
}  // namespace koios::sim
