#include <gtest/gtest.h>

#include <vector>

#include "koios/core/postprocess.h"
#include "koios/core/refinement.h"
#include "koios/core/searcher.h"
#include "test_util.h"

namespace koios::core {
namespace {

// End-to-end harness at the phase level so stats of each filter can be
// inspected (searcher_test covers the public API).
struct PostHarness {
  PostHarness(testing::RandomWorkload* w, std::vector<TokenId> q, Score alpha)
      : workload(w),
        query(std::move(q)),
        inverted(w->corpus.sets),
        stream(query, w->index.get(), alpha,
               [this](TokenId t) { return inverted.InVocabulary(t); }),
        cache(&stream) {}

  std::vector<ResultEntry> Run(const SearchParams& params, SearchStats* stats) {
    RefinementPhase refinement(&workload->corpus.sets, &inverted, query.size(),
                               params);
    RefinementOutput refined = refinement.Run(&cache, stats);
    PostProcessor post(&workload->corpus.sets, &cache, params, nullptr,
                       nullptr);
    return post.Run(std::move(refined), stats);
  }

  testing::RandomWorkload* workload;
  std::vector<TokenId> query;
  index::InvertedIndex inverted;
  sim::TokenStream stream;
  EdgeCache cache;
};

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

TEST(PostProcessTest, NoEmFilterSkipsVerifications) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 601);
  PostHarness harness(&w, QueryOf(w, 0), 0.8);
  SearchParams with;
  with.k = 10;
  with.alpha = 0.8;
  with.verify_result_scores = false;
  SearchParams without = with;
  without.use_no_em_filter = false;
  SearchStats s1, s2;
  const auto r1 = harness.Run(with, &s1);
  const auto r2 = harness.Run(without, &s2);
  EXPECT_EQ(s2.no_em_skipped, 0u);
  EXPECT_LE(s1.em_computed, s2.em_computed);
  // Same k-th threshold either way (r1 scores may be LBs for No-EM sets,
  // but the *sets* must coincide in aggregate score mass).
  ASSERT_EQ(r1.size(), r2.size());
}

TEST(PostProcessTest, NoEmAdmittedSetsAreTrueTopK) {
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 602);
  const auto query = QueryOf(w, 5);
  PostHarness harness(&w, query, 0.8);
  SearchParams params;
  params.k = 8;
  params.alpha = 0.8;
  params.verify_result_scores = false;  // keep LB scores visible
  SearchStats stats;
  const auto result = harness.Run(params, &stats);
  const auto oracle =
      testing::OracleRanking(w.corpus.sets, query, *w.sim, params.alpha);
  const Score theta_star = testing::OracleKthScore(oracle, params.k);
  for (const auto& entry : result) {
    const Score so = matching::SemanticOverlap(
        query, w.corpus.sets.Tokens(entry.set), *w.sim, params.alpha);
    EXPECT_GE(so, theta_star - 1e-6)
        << "set " << entry.set << " not in a valid top-k";
    if (!entry.exact) {
      EXPECT_LE(entry.score, so + 1e-9) << "LB reported above SO";
    }
  }
}

TEST(PostProcessTest, EarlyTerminationOnlySavesWork) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 603);
  PostHarness harness(&w, QueryOf(w, 13), 0.8);
  SearchParams with;
  with.k = 10;
  with.alpha = 0.8;
  SearchParams without = with;
  without.use_em_early_termination = false;
  SearchStats s1, s2;
  const auto r1 = harness.Run(with, &s1);
  const auto r2 = harness.Run(without, &s2);
  EXPECT_EQ(s2.em_early_terminated, 0u);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i].score, r2[i].score, 1e-6);
  }
}

TEST(PostProcessTest, VerifyResultScoresMakesEverythingExact) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 20, 604);
  PostHarness harness(&w, QueryOf(w, 21), 0.8);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  params.verify_result_scores = true;
  SearchStats stats;
  const auto result = harness.Run(params, &stats);
  for (const auto& entry : result) {
    EXPECT_TRUE(entry.exact);
  }
}

TEST(PostProcessTest, FewerPositiveSetsThanK) {
  // Tiny repository: fewer candidates than k — everything alive is the
  // result and nothing may be lost.
  auto w = testing::MakeRandomWorkload(12, 120, 4, 8, 605);
  const auto query = QueryOf(w, 0);
  PostHarness harness(&w, query, 0.8);
  SearchParams params;
  params.k = 50;
  params.alpha = 0.8;
  SearchStats stats;
  const auto result = harness.Run(params, &stats);
  const auto oracle =
      testing::OracleRanking(w.corpus.sets, query, *w.sim, params.alpha);
  EXPECT_EQ(result.size(), oracle.size());
}

TEST(PostProcessTest, ParallelEmMatchesSequential) {
  auto w = testing::MakeRandomWorkload(140, 600, 5, 25, 606);
  const auto query = QueryOf(w, 30);
  PostHarness h1(&w, query, 0.8);
  SearchParams sequential;
  sequential.k = 10;
  sequential.alpha = 0.8;
  SearchStats s1;
  const auto r1 = h1.Run(sequential, &s1);

  // Parallel path through the public searcher (thread pool inside).
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams parallel = sequential;
  parallel.num_threads = 4;
  const auto r2 = searcher.Search(query, parallel);
  ASSERT_EQ(r1.size(), r2.topk.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r1[i].score, r2.topk[i].score, 1e-6);
  }
}

TEST(PostProcessTest, GlobalThresholdMonotoneMax) {
  GlobalThreshold theta;
  EXPECT_DOUBLE_EQ(theta.Get(), 0.0);
  theta.Publish(2.5);
  theta.Publish(1.0);  // lower value ignored
  EXPECT_DOUBLE_EQ(theta.Get(), 2.5);
  theta.Publish(3.0);
  EXPECT_DOUBLE_EQ(theta.Get(), 3.0);
}

TEST(PostProcessTest, StatsPartitionPostprocessSets) {
  auto w = testing::MakeRandomWorkload(100, 500, 5, 20, 607);
  PostHarness harness(&w, QueryOf(w, 8), 0.8);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  SearchStats stats;
  harness.Run(params, &stats);
  // Every surviving set is accounted for by exactly one outcome.
  EXPECT_GE(stats.postprocess_sets,
            stats.no_em_skipped + stats.em_computed + stats.em_early_terminated);
}

}  // namespace
}  // namespace koios::core
