// The central correctness property of the repository: for any corpus,
// query, k, α, partitioning, and filter configuration, Koios returns an
// exact top-k result — the k-th score equals the brute-force oracle's θ*k,
// and every reported set's score is its true semantic overlap.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "koios/core/searcher.h"
#include "test_util.h"

namespace koios::core {
namespace {

using testing::MakeRandomWorkload;
using testing::OracleKthScore;
using testing::OracleRanking;

constexpr double kTol = 1e-6;

void ExpectExactTopK(const index::SetCollection& sets,
                     std::span<const TokenId> query,
                     const sim::SimilarityFunction& sim, Score alpha,
                     const SearchResult& result, size_t k,
                     const std::string& label) {
  const auto oracle = OracleRanking(sets, query, sim, alpha);
  const Score theta_star = OracleKthScore(oracle, k);
  const size_t expected_size = std::min(k, oracle.size());
  ASSERT_EQ(result.topk.size(), expected_size) << label;
  if (expected_size == 0) return;

  // k-th score must match θ*k exactly (ties may swap identities).
  EXPECT_NEAR(result.KthScore(), theta_star, kTol) << label;

  // Every reported entry: score is the true SO of that set, >= θ*k, and in
  // non-increasing order.
  Score prev = std::numeric_limits<Score>::infinity();
  for (const ResultEntry& entry : result.topk) {
    const Score truth = matching::SemanticOverlap(
        query, sets.Tokens(entry.set), sim, alpha);
    EXPECT_NEAR(entry.score, truth, kTol)
        << label << " set " << entry.set;
    EXPECT_GE(entry.score, theta_star - kTol) << label;
    EXPECT_LE(entry.score, prev + kTol) << label;
    prev = entry.score;
  }
}

// --------------------------------------------------------- basic queries --

TEST(ExactnessTest, SingleQueryDefaultParams) {
  auto w = MakeRandomWorkload(120, 600, 5, 25, 1001);
  const auto q = w.corpus.sets.Tokens(3);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  const SearchResult result = searcher.Search(q, params);
  ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                  "default");
}

TEST(ExactnessTest, QueryNotInRepository) {
  auto w = MakeRandomWorkload(100, 500, 5, 20, 1002);
  // Synthesize a query of arbitrary vocabulary tokens (not a stored set).
  std::vector<TokenId> q = {w.corpus.vocabulary[1], w.corpus.vocabulary[7],
                            w.corpus.vocabulary[13], w.corpus.vocabulary[42],
                            w.corpus.vocabulary[77]};
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 5;
  params.alpha = 0.75;
  const SearchResult result = searcher.Search(q, params);
  ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                  "external query");
}

TEST(ExactnessTest, QueryWithOutOfVocabularyTokens) {
  // Includes tokens beyond the corpus vocabulary (match nothing) and OOV
  // embedding tokens (match only identically).
  auto w = MakeRandomWorkload(100, 500, 5, 20, 1003, /*coverage=*/0.6);
  std::vector<TokenId> q(w.corpus.sets.Tokens(5).begin(),
                         w.corpus.sets.Tokens(5).end());
  q.push_back(static_cast<TokenId>(10'000'000));  // nowhere in D
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  const SearchResult result = searcher.Search(q, params);
  ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                  "oov query");
}

TEST(ExactnessTest, EmptyQueryReturnsNothing) {
  auto w = MakeRandomWorkload(50, 300, 5, 15, 1004);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  const SearchResult result = searcher.Search({}, params);
  EXPECT_TRUE(result.topk.empty());
}

TEST(ExactnessTest, SelfQueryRanksItselfFirst) {
  auto w = MakeRandomWorkload(80, 400, 8, 20, 1005);
  const SetId target = 11;
  const auto q = w.corpus.sets.Tokens(target);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 3;
  const SearchResult result = searcher.Search(q, params);
  ASSERT_FALSE(result.topk.empty());
  // SO(Q, Q) = |Q|; the source set must score exactly |Q| and top the list.
  EXPECT_NEAR(result.topk[0].score, static_cast<Score>(q.size()), kTol);
  bool found = false;
  for (const auto& e : result.topk) found |= (e.set == target);
  EXPECT_TRUE(found);
}

// ----------------------------------------------- parameterized k x alpha --

class ExactnessSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(ExactnessSweepTest, KoiosMatchesOracle) {
  const auto [k, alpha] = GetParam();
  auto w = MakeRandomWorkload(150, 700, 4, 30, 2000 + k * 13);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  for (SetId qid : {SetId{0}, SetId{29}, SetId{88}}) {
    const auto q = w.corpus.sets.Tokens(qid);
    SearchParams params;
    params.k = k;
    params.alpha = alpha;
    const SearchResult result = searcher.Search(q, params);
    ExpectExactTopK(w.corpus.sets, q, *w.sim, alpha, result, k,
                    "k=" + std::to_string(k) + " alpha=" + std::to_string(alpha) +
                        " q=" + std::to_string(qid));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAlphaGrid, ExactnessSweepTest,
    ::testing::Combine(::testing::Values<size_t>(1, 3, 10, 25),
                       ::testing::Values(0.6, 0.75, 0.85, 0.95)));

// ------------------------------------------------------------ partitions --

class PartitionExactnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionExactnessTest, PartitionedSearchIsExact) {
  const size_t partitions = GetParam();
  auto w = MakeRandomWorkload(130, 600, 5, 25, 3000);
  SearcherOptions options;
  options.num_partitions = partitions;
  KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  EXPECT_EQ(searcher.num_partitions(), partitions);
  for (SetId qid : {SetId{2}, SetId{64}}) {
    const auto q = w.corpus.sets.Tokens(qid);
    SearchParams params;
    params.k = 8;
    params.alpha = 0.78;
    const SearchResult result = searcher.Search(q, params);
    ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                    "partitions=" + std::to_string(partitions));
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, PartitionExactnessTest,
                         ::testing::Values<size_t>(1, 2, 5, 10, 25));

TEST(PartitionExactnessTest, ParallelPartitionsMatchSequential) {
  auto w = MakeRandomWorkload(100, 500, 5, 20, 3100);
  SearcherOptions options;
  options.num_partitions = 6;
  KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
  const auto q = w.corpus.sets.Tokens(17);
  SearchParams sequential;
  sequential.k = 10;
  sequential.alpha = 0.8;
  SearchParams parallel = sequential;
  parallel.num_threads = 4;
  const auto r1 = searcher.Search(q, sequential);
  const auto r2 = searcher.Search(q, parallel);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  EXPECT_NEAR(r1.KthScore(), r2.KthScore(), kTol);
}

// -------------------------------------------------------- filter ablation --

struct FilterConfig {
  bool iub, bucket, no_em, em_et;
};

class FilterAblationTest : public ::testing::TestWithParam<FilterConfig> {};

TEST_P(FilterAblationTest, AnyFilterCombinationIsExact) {
  const FilterConfig config = GetParam();
  auto w = MakeRandomWorkload(120, 500, 5, 25, 4000);
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = w.corpus.sets.Tokens(9);
  SearchParams params;
  params.k = 10;
  params.alpha = 0.8;
  params.use_iub_filter = config.iub;
  params.use_bucket_index = config.bucket;
  params.use_no_em_filter = config.no_em;
  params.use_em_early_termination = config.em_et;
  const SearchResult result = searcher.Search(q, params);
  ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                  "filters");
}

INSTANTIATE_TEST_SUITE_P(
    FilterGrid, FilterAblationTest,
    ::testing::Values(FilterConfig{false, false, false, false},
                      FilterConfig{true, false, false, false},
                      FilterConfig{true, true, false, false},
                      FilterConfig{true, true, true, false},
                      FilterConfig{true, true, false, true},
                      FilterConfig{false, false, true, true},
                      FilterConfig{true, true, true, true}));

// ------------------------------------------------------- stress sampling --

TEST(ExactnessTest, RandomizedStress) {
  // Many small random instances across seeds; any bound or filter bug
  // surfaces as a θ*k mismatch here.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto w = MakeRandomWorkload(60 + seed * 5, 300 + seed * 20, 3, 18, seed * 7);
    SearcherOptions options;
    options.num_partitions = 1 + seed % 4;
    KoiosSearcher searcher(&w.corpus.sets, w.index.get(), options);
    const SetId qid = static_cast<SetId>(seed * 3 % w.corpus.sets.size());
    const auto q = w.corpus.sets.Tokens(qid);
    SearchParams params;
    params.k = 1 + seed % 9;
    params.alpha = 0.65 + 0.03 * (seed % 10);
    const SearchResult result = searcher.Search(q, params);
    ExpectExactTopK(w.corpus.sets, q, *w.sim, params.alpha, result, params.k,
                    "stress seed=" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace koios::core
