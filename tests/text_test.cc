#include <gtest/gtest.h>

#include "koios/text/dictionary.h"
#include "koios/text/qgram.h"
#include "koios/text/tokenizer.h"

namespace koios::text {
namespace {

// -------------------------------------------------------------- Dictionary --

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupMissingReturnsInvalid) {
  Dictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("y"), kInvalidToken);
  EXPECT_FALSE(dict.Contains("y"));
  EXPECT_TRUE(dict.Contains("x"));
}

TEST(DictionaryTest, TokenOfRoundTrips) {
  Dictionary dict;
  const TokenId id = dict.Intern("NewYorkCity");
  EXPECT_EQ(dict.TokenOf(id), "NewYorkCity");
}

TEST(DictionaryTest, ManyTokensSurviveRehash) {
  // deque-backed storage must keep string_view keys valid across growth.
  Dictionary dict;
  for (int i = 0; i < 5000; ++i) {
    dict.Intern("token_" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 5000u);
  EXPECT_EQ(dict.Lookup("token_0"), 0u);
  EXPECT_EQ(dict.Lookup("token_4999"), 4999u);
  EXPECT_EQ(dict.TokenOf(1234), "token_1234");
}

// --------------------------------------------------------------- Tokenizer --

TEST(TokenizerTest, SplitsAndLowercases) {
  const auto tokens = TokenizeToSet("Hello World hello");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
}

TEST(TokenizerTest, DropsNumericValues) {
  const auto tokens = TokenizeToSet("revenue 12,345 grew 3.5% in 2021");
  // "12,345", "3.5%", "2021" all removed (paper §VIII-A1).
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "revenue");
  EXPECT_EQ(tokens[1], "grew");
  EXPECT_EQ(tokens[2], "in");
}

TEST(TokenizerTest, DropsUrls) {
  const auto tokens = TokenizeToSet("see https://example.com and www.foo.org now");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "see");
  EXPECT_EQ(tokens[1], "and");
  EXPECT_EQ(tokens[2], "now");
}

TEST(TokenizerTest, DropsNonAsciiTokens) {
  const auto tokens = TokenizeToSet("covid \xF0\x9F\x98\xB7 update");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "covid");
  EXPECT_EQ(tokens[1], "update");
}

TEST(TokenizerTest, TrimsPunctuation) {
  const auto tokens = TokenizeToSet("(hello), \"world\"!");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
}

TEST(TokenizerTest, DeduplicatesPreservingFirstOccurrence) {
  const auto tokens = TokenizeToSet("b a b c a");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "b");
  EXPECT_EQ(tokens[1], "a");
  EXPECT_EQ(tokens[2], "c");
}

TEST(TokenizerTest, IsNumericTokenCases) {
  EXPECT_TRUE(IsNumericToken("123"));
  EXPECT_TRUE(IsNumericToken("-3.5"));
  EXPECT_TRUE(IsNumericToken("12,345"));
  EXPECT_TRUE(IsNumericToken("99%"));
  EXPECT_FALSE(IsNumericToken("a123"));
  EXPECT_FALSE(IsNumericToken(""));
  EXPECT_FALSE(IsNumericToken("--"));  // signs only, no digit
}

// ------------------------------------------------------------------ QGrams --

TEST(QGramTest, ExtractsSortedDistinctGrams) {
  // "Blaine" -> {bla, lai, ain, ine} (paper Fig. 1 uses exactly these).
  const auto grams = QGrams("Blaine", 3);
  // Note: paper lowercases separately; here raw. 4 grams: Bla lai ain ine.
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_TRUE(std::is_sorted(grams.begin(), grams.end()));
}

TEST(QGramTest, ShortTokenYieldsItself) {
  const auto grams = QGrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramTest, PaperFigureOneValues) {
  EXPECT_NEAR(QGramJaccard("Blaine", "Blain"), 3.0 / 4.0, 1e-12);
  EXPECT_NEAR(QGramJaccard("BigApple", "Appleton"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(QGramJaccard("BigApple", "NewYorkCity"), 0.0, 1e-12);
}

TEST(QGramTest, IdenticalTokensScoreOne) {
  EXPECT_NEAR(QGramJaccard("charleston", "charleston"), 1.0, 1e-12);
}

TEST(QGramTest, JaccardSymmetric) {
  EXPECT_NEAR(QGramJaccard("squirrel", "squirrell"),
              QGramJaccard("squirrell", "squirrel"), 1e-12);
}

TEST(QGramTest, EmptyInputs) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_NEAR(JaccardSorted({}, {}), 0.0, 1e-12);
}

}  // namespace
}  // namespace koios::text
