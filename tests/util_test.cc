#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "koios/util/memory_tracker.h"
#include "koios/util/rng.h"
#include "koios/util/status.h"
#include "koios/util/thread_pool.h"
#include "koios/util/top_k_list.h"
#include "koios/util/zipf.h"

namespace koios::util {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, RetryAfterPayload) {
  Status s = Status::ResourceExhausted("queue full").WithRetryAfterMs(12);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.has_retry_after());
  EXPECT_EQ(s.retry_after_ms(), 12);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: queue full (retry after 12 ms)");
}

TEST(StatusTest, NoRetryAfterByDefault) {
  Status s = Status::ResourceExhausted("queue full");
  EXPECT_FALSE(s.has_retry_after());
  EXPECT_EQ(s.retry_after_ms(), 0);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: queue full");
}

TEST(StatusTest, NonPositiveRetryAfterMeansNoHint) {
  Status zero = Status::DeadlineExceeded("late").WithRetryAfterMs(0);
  EXPECT_FALSE(zero.has_retry_after());
  Status negative = Status::DeadlineExceeded("late").WithRetryAfterMs(-5);
  EXPECT_FALSE(negative.has_retry_after());
  EXPECT_EQ(negative.ToString(), "DeadlineExceeded: late");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child stream should not replicate the parent's continuing stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.NextUint64() == child.NextUint64());
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------------ Zipf --

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(29);
  ZipfDistribution dist(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[dist.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(31);
  ZipfDistribution dist(1000, 1.0);
  std::vector<int> counts(1000, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(&rng)];
  EXPECT_GT(counts[0], counts[9] * 3);
  EXPECT_GT(counts[0], counts[99] * 20);
}

TEST(ZipfTest, RatioMatchesTheory) {
  // P(0)/P(1) = 2^s for Zipf(s).
  Rng rng(37);
  ZipfDistribution dist(100, 2.0);
  int c0 = 0, c1 = 0;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t r = dist.Sample(&rng);
    c0 += (r == 0);
    c1 += (r == 1);
  }
  EXPECT_NEAR(static_cast<double>(c0) / c1, 4.0, 0.5);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(41);
  ZipfDistribution dist(5, 1.5);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(dist.Sample(&rng), 5u);
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesReturnValues) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 7; });
  auto f2 = pool.Submit([] { return std::string("koios"); });
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), "koios");
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  auto f = pool.Submit([] { return 1 + 1; });
  EXPECT_EQ(f.get(), 2);
}

// ------------------------------------------------------------- TopKList --

TEST(TopKListTest, KeepsKLargest) {
  TopKList<int> list(3);
  for (int i = 0; i < 10; ++i) list.Offer(i, static_cast<double>(i));
  EXPECT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list.Bottom(), 7.0);
  EXPECT_DOUBLE_EQ(list.Top(), 9.0);
  const auto entries = list.Descending();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 9);
  EXPECT_EQ(entries[1].first, 8);
  EXPECT_EQ(entries[2].first, 7);
}

TEST(TopKListTest, BottomIsFloorUntilFull) {
  TopKList<int> list(4, 0.0);
  EXPECT_DOUBLE_EQ(list.Bottom(), 0.0);
  list.Offer(1, 10.0);
  list.Offer(2, 20.0);
  EXPECT_DOUBLE_EQ(list.Bottom(), 0.0);  // not full yet
  list.Offer(3, 30.0);
  list.Offer(4, 40.0);
  EXPECT_DOUBLE_EQ(list.Bottom(), 10.0);
}

TEST(TopKListTest, UpdateRaisesExistingEntry) {
  TopKList<int> list(2);
  list.Offer(1, 1.0);
  list.Offer(2, 2.0);
  list.Offer(1, 5.0);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list.ScoreOf(1), 5.0);
  EXPECT_DOUBLE_EQ(list.Bottom(), 2.0);
}

TEST(TopKListTest, RejectsWorseThanBottomWhenFull) {
  TopKList<int> list(2);
  list.Offer(1, 5.0);
  list.Offer(2, 6.0);
  EXPECT_FALSE(list.Offer(3, 4.0));
  EXPECT_FALSE(list.Contains(3));
  EXPECT_TRUE(list.Offer(4, 7.0));
  EXPECT_FALSE(list.Contains(1));
}

TEST(TopKListTest, RemoveShrinksAndReopens) {
  TopKList<int> list(2);
  list.Offer(1, 5.0);
  list.Offer(2, 6.0);
  EXPECT_TRUE(list.Remove(1));
  EXPECT_FALSE(list.Remove(1));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.Offer(3, 1.0));  // room again
}

// --------------------------------------------------------- MemoryTracker --

TEST(MemoryTrackerTest, AddAccumulatesAndPeakMaxes) {
  MemoryTracker tracker;
  tracker.Add("a", 100);
  tracker.Add("a", 50);
  tracker.AddPeak("b", 10);
  tracker.AddPeak("b", 5);
  EXPECT_EQ(tracker.Get("a"), 150u);
  EXPECT_EQ(tracker.Get("b"), 10u);
  EXPECT_EQ(tracker.TotalBytes(), 160u);
}

TEST(MemoryTrackerTest, MergeSums) {
  MemoryTracker a, b;
  a.Add("x", 1);
  b.Add("x", 2);
  b.Add("y", 3);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 3u);
  EXPECT_EQ(a.Get("y"), 3u);
}

TEST(MemoryTrackerTest, FormatBytesUnits) {
  EXPECT_EQ(MemoryTracker::FormatBytes(512), "512 B");
  EXPECT_EQ(MemoryTracker::FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(MemoryTracker::FormatBytes(3 * 1024 * 1024), "3.00 MB");
}

}  // namespace
}  // namespace koios::util
