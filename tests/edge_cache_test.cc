// Unit tests for the materialized stream / similarity cache.
#include <gtest/gtest.h>

#include <future>
#include <span>
#include <vector>

#include "koios/core/edge_cache.h"
#include "koios/index/inverted_index.h"
#include "koios/matching/hungarian.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/token_stream.h"
#include "koios/util/thread_pool.h"
#include "test_util.h"

namespace koios::core {
namespace {

TEST(EdgeCacheTest, PreservesStreamOrder) {
  auto w = testing::MakeRandomWorkload(40, 200, 5, 15, 9001);
  const auto qs = w.corpus.sets.Tokens(0);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), 0.75,
                          [](TokenId) { return true; });
  EdgeCache cache(&stream);
  Score prev = 1.0;
  for (const auto& tuple : cache.tuples()) {
    EXPECT_LE(tuple.sim, prev + 1e-12);
    prev = tuple.sim;
  }
  EXPECT_EQ(stream.emitted(), cache.tuples().size());
}

TEST(EdgeCacheTest, EdgesGroupedByToken) {
  auto w = testing::MakeRandomWorkload(40, 200, 5, 15, 9002);
  const auto qs = w.corpus.sets.Tokens(1);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), 0.75,
                          [](TokenId) { return true; });
  EdgeCache cache(&stream);
  size_t total_edges = 0;
  for (const auto& tuple : cache.tuples()) {
    bool found = false;
    for (const auto& edge : cache.EdgesOf(tuple.token)) {
      if (edge.query_pos == tuple.query_pos) {
        EXPECT_DOUBLE_EQ(edge.sim, tuple.sim);
        found = true;
      }
    }
    EXPECT_TRUE(found);
    (void)total_edges;
  }
  EXPECT_TRUE(cache.EdgesOf(static_cast<TokenId>(12345678)).empty());
}

TEST(EdgeCacheTest, BuildMatrixRestrictsToIncidentNodes) {
  testing::TableSimilarity sim;
  sim.Set(0, 100, 0.9);
  sim.Set(2, 101, 0.8);
  sim::ExactKnnIndex index({100, 101, 102}, &sim);
  sim::TokenStream stream({0, 1, 2}, &index, 0.7,
                          [](TokenId) { return false; });
  EdgeCache cache(&stream);
  std::vector<uint32_t> rows, cols;
  const std::vector<TokenId> candidate = {100, 101, 102};
  const auto m = cache.BuildMatrix(candidate, &rows, &cols);
  // Query position 1 and candidate token 102 have no edges: excluded.
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
  EXPECT_NEAR(m.At(0, 0), 0.9, 1e-12);
  EXPECT_NEAR(m.At(1, 1), 0.8, 1e-12);
  EXPECT_NEAR(m.At(0, 1), 0.0, 1e-12);
}

TEST(EdgeCacheTest, BuildMatrixEmptyForUnrelatedSet) {
  testing::TableSimilarity sim;
  sim::ExactKnnIndex index({100}, &sim);
  sim::TokenStream stream({0}, &index, 0.7, [](TokenId) { return false; });
  EdgeCache cache(&stream);
  std::vector<uint32_t> rows, cols;
  const std::vector<TokenId> candidate = {100};
  const auto m = cache.BuildMatrix(candidate, &rows, &cols);
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(EdgeCacheTest, MatrixScoreMatchesDirectOracle) {
  // Matching on cache-built matrices == matching on directly-built graphs.
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 9003);
  index::InvertedIndex inverted(w.corpus.sets);
  const auto qs = w.corpus.sets.Tokens(2);
  std::vector<TokenId> q(qs.begin(), qs.end());
  const Score alpha = 0.75;
  sim::TokenStream stream(q, w.index.get(), alpha, [&](TokenId t) {
    return inverted.InVocabulary(t);
  });
  EdgeCache cache(&stream);
  for (SetId id = 0; id < 30; ++id) {
    std::vector<uint32_t> rows, cols;
    const auto m = cache.BuildMatrix(w.corpus.sets.Tokens(id), &rows, &cols);
    const Score via_cache = matching::HungarianMatcher::Solve(m).score;
    const Score direct = matching::SemanticOverlap(
        q, w.corpus.sets.Tokens(id), *w.sim, alpha);
    EXPECT_NEAR(via_cache, direct, 1e-9) << "set " << id;
  }
}

TEST(EdgeCacheTest, DeferredMaterializeFeedsConcurrentConsumers) {
  // The overlapped-search shape: several consumers replay the stream
  // through NextTuples while the producer is still materializing. Every
  // consumer must observe the exact same sequence the finished cache
  // reports via tuples().
  auto w = testing::MakeRandomWorkload(60, 300, 5, 15, 9005);
  const auto qs = w.corpus.sets.Tokens(3);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), 0.6,
                          [](TokenId) { return true; });
  EdgeCache cache(&stream, EdgeCache::Deferred{});

  constexpr size_t kConsumers = 4;
  util::ThreadPool pool(kConsumers);
  std::vector<std::future<std::vector<sim::StreamTuple>>> futures;
  for (size_t c = 0; c < kConsumers; ++c) {
    futures.push_back(pool.Submit([&cache] {
      std::vector<sim::StreamTuple> seen;
      std::vector<sim::StreamTuple> buf(7);  // odd size: spans batches
      size_t from = 0;
      while (const size_t n =
                 cache.NextTuples(from, std::span<sim::StreamTuple>(buf))) {
        seen.insert(seen.end(), buf.begin(), buf.begin() + n);
        from += n;
      }
      return seen;
    }));
  }
  cache.Materialize();
  const auto& want = cache.tuples();
  ASSERT_FALSE(want.empty());
  for (auto& f : futures) {
    const auto seen = f.get();
    ASSERT_EQ(seen.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(seen[i].token, want[i].token) << "pos " << i;
      EXPECT_EQ(seen[i].query_pos, want[i].query_pos) << "pos " << i;
      EXPECT_DOUBLE_EQ(seen[i].sim, want[i].sim) << "pos " << i;
    }
  }
}

TEST(EdgeCacheTest, InlineModeProducesOnDemandAndSeals) {
  // The single-thread pipelined shape: the consumer's NextTuples pulls
  // production along; FinishProduction seals, and replays observe the
  // exact sequence a synchronous cache produces.
  auto w = testing::MakeRandomWorkload(50, 250, 5, 15, 9006);
  const auto qs = w.corpus.sets.Tokens(2);
  std::vector<TokenId> q(qs.begin(), qs.end());
  std::vector<sim::StreamTuple> want;
  {
    sim::TokenStream stream(q, w.index.get(), 0.7,
                            [](TokenId) { return true; });
    EdgeCache sync_cache(&stream);
    want = sync_cache.tuples();
  }
  w.index->ResetCursors();
  sim::TokenStream stream(q, w.index.get(), 0.7, [](TokenId) { return true; });
  EdgeCache cache(&stream, EdgeCache::InlineProducer{});
  EXPECT_FALSE(cache.Materialized());
  std::vector<sim::StreamTuple> seen;
  std::vector<sim::StreamTuple> buf(5);
  size_t from = 0;
  while (const size_t n =
             cache.NextTuples(from, std::span<sim::StreamTuple>(buf))) {
    seen.insert(seen.end(), buf.begin(), buf.begin() + n);
    from += n;
  }
  cache.FinishProduction();
  ASSERT_TRUE(cache.Materialized());
  EXPECT_TRUE(cache.ExhaustedToAlpha());
  EXPECT_DOUBLE_EQ(cache.stop_sim(), 0.0);
  EXPECT_EQ(cache.produced(), want.size());
  ASSERT_EQ(seen.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(seen[i].token, want[i].token) << i;
    EXPECT_DOUBLE_EQ(seen[i].sim, want[i].sim) << i;
  }
}

TEST(EdgeCacheTest, InlineModeSealsEarlyWithSlack) {
  // A consumer that stops pulling mid-stream seals the cache with a sound
  // slack: the recorded stop similarity bounds every unproduced pair.
  auto w = testing::MakeRandomWorkload(50, 250, 5, 15, 9007);
  const auto qs = w.corpus.sets.Tokens(4);
  std::vector<TokenId> q(qs.begin(), qs.end());
  std::vector<sim::StreamTuple> full;
  {
    sim::TokenStream stream(q, w.index.get(), 0.7,
                            [](TokenId) { return true; });
    EdgeCache sync_cache(&stream);
    full = sync_cache.tuples();
  }
  ASSERT_GT(full.size(), 8u);
  w.index->ResetCursors();
  sim::TokenStream stream(q, w.index.get(), 0.7, [](TokenId) { return true; });
  EdgeCache cache(&stream, EdgeCache::InlineProducer{});
  std::vector<sim::StreamTuple> buf(8);
  ASSERT_EQ(cache.NextTuples(0, std::span<sim::StreamTuple>(buf)), 8u);
  cache.FinishProduction();
  ASSERT_TRUE(cache.Materialized());
  EXPECT_FALSE(cache.ExhaustedToAlpha());
  for (size_t i = cache.produced(); i < full.size(); ++i) {
    EXPECT_LE(full[i].sim, cache.stop_sim() + 1e-12) << i;
  }
}

TEST(EdgeCacheTest, AbortPoisonsWithFullSlack) {
  auto w = testing::MakeRandomWorkload(30, 150, 5, 12, 9008);
  const auto qs = w.corpus.sets.Tokens(1);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), 0.8, [](TokenId) { return true; });
  EdgeCache cache(&stream, EdgeCache::Deferred{});
  cache.Abort();
  EXPECT_TRUE(cache.Materialized());
  EXPECT_FALSE(cache.ExhaustedToAlpha());
  EXPECT_DOUBLE_EQ(cache.stop_sim(), 1.0);
  // A blocked consumer wakes with 0 tuples instead of hanging.
  std::vector<sim::StreamTuple> buf(4);
  EXPECT_EQ(cache.NextTuples(0, std::span<sim::StreamTuple>(buf)), 0u);
}

TEST(EdgeCacheTest, SelfMatchEdgesPresentForVocabularyTokens) {
  auto w = testing::MakeRandomWorkload(30, 150, 5, 12, 9004);
  index::InvertedIndex inverted(w.corpus.sets);
  const auto qs = w.corpus.sets.Tokens(0);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), 0.8, [&](TokenId t) {
    return inverted.InVocabulary(t);
  });
  EdgeCache cache(&stream);
  for (uint32_t pos = 0; pos < q.size(); ++pos) {
    bool has_self = false;
    for (const auto& edge : cache.EdgesOf(q[pos])) {
      has_self |= (edge.query_pos == pos && edge.sim == 1.0);
    }
    EXPECT_TRUE(has_self) << "query pos " << pos;
  }
}

}  // namespace
}  // namespace koios::core
