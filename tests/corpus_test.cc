#include <gtest/gtest.h>

#include <set>

#include "koios/data/corpus.h"
#include "koios/data/query_benchmark.h"
#include "koios/index/inverted_index.h"

namespace koios::data {
namespace {

TEST(CorpusTest, GeneratesRequestedNumberOfSets) {
  CorpusSpec spec;
  spec.num_sets = 500;
  spec.vocab_size = 2000;
  spec.min_set_size = 5;
  spec.max_set_size = 30;
  const Corpus corpus = GenerateCorpus(spec);
  EXPECT_EQ(corpus.NumSets(), 500u);
}

TEST(CorpusTest, SetSizesWithinBounds) {
  CorpusSpec spec;
  spec.num_sets = 300;
  spec.vocab_size = 5000;
  spec.size_distribution = SizeDistribution::kUniform;
  spec.min_set_size = 10;
  spec.max_set_size = 40;
  const Corpus corpus = GenerateCorpus(spec);
  for (SetId id = 0; id < corpus.sets.size(); ++id) {
    EXPECT_GE(corpus.sets.SetSize(id), 5u);  // rejection cap may trim a bit
    EXPECT_LE(corpus.sets.SetSize(id), 40u);
  }
}

TEST(CorpusTest, DeterministicForSeed) {
  CorpusSpec spec;
  spec.num_sets = 100;
  spec.vocab_size = 1000;
  spec.seed = 77;
  const Corpus c1 = GenerateCorpus(spec);
  const Corpus c2 = GenerateCorpus(spec);
  ASSERT_EQ(c1.NumSets(), c2.NumSets());
  for (SetId id = 0; id < c1.sets.size(); ++id) {
    const auto t1 = c1.sets.Tokens(id), t2 = c2.sets.Tokens(id);
    ASSERT_EQ(t1.size(), t2.size());
    for (size_t i = 0; i < t1.size(); ++i) EXPECT_EQ(t1[i], t2[i]);
  }
}

TEST(CorpusTest, ElementSkewCreatesFrequentTokens) {
  CorpusSpec skewed;
  skewed.num_sets = 400;
  skewed.vocab_size = 3000;
  skewed.element_skew = 1.05;  // WDC-like
  skewed.seed = 5;
  CorpusSpec flat = skewed;
  flat.element_skew = 0.0;
  flat.seed = 5;
  auto posting_max = [](const Corpus& c) {
    index::InvertedIndex inverted(c.sets);
    return inverted.MaxPostingLength();
  };
  EXPECT_GT(posting_max(GenerateCorpus(skewed)),
            2 * posting_max(GenerateCorpus(flat)));
}

TEST(CorpusTest, VocabularyMatchesDistinctTokens) {
  const Corpus corpus = GenerateCorpus(TwitterSpec(0.02));
  EXPECT_EQ(corpus.vocabulary.size(), corpus.sets.DistinctTokens());
  EXPECT_TRUE(std::is_sorted(corpus.vocabulary.begin(),
                             corpus.vocabulary.end()));
}

TEST(CorpusTest, PresetsScaleDown) {
  const CorpusSpec full = WdcSpec(1.0);
  const CorpusSpec scaled = WdcSpec(0.01);
  EXPECT_NEAR(static_cast<double>(scaled.num_sets) / full.num_sets, 0.01,
              0.005);
  EXPECT_LT(scaled.max_set_size, full.max_set_size);
}

TEST(CorpusTest, PresetShapesRoughlyMatchTableOne) {
  // Scaled-down presets must preserve each dataset's qualitative shape:
  // Twitter small sets, DBLP large sets, OpenData heavy tail.
  const Corpus dblp = GenerateCorpus(DblpSpec(0.1));
  const Corpus twitter = GenerateCorpus(TwitterSpec(0.1));
  const Corpus open_data = GenerateCorpus(OpenDataSpec(0.1));
  EXPECT_GT(dblp.sets.AvgSetSize(), 100.0);
  EXPECT_LT(twitter.sets.AvgSetSize(), 40.0);
  // Heavy tail: max far above average.
  EXPECT_GT(open_data.sets.MaxSetSize(),
            10 * static_cast<size_t>(open_data.sets.AvgSetSize()));
}

// --------------------------------------------------------- QueryBenchmark --

TEST(QueryBenchmarkTest, IntervalSamplingRespectsBounds) {
  const Corpus corpus = GenerateCorpus(OpenDataSpec(0.05));
  util::Rng rng(9);
  const auto intervals = OpenDataIntervals(corpus.sets.MaxSetSize());
  const auto queries = SampleQueriesByInterval(corpus, intervals, 5, &rng);
  for (const auto& query : queries) {
    const auto& iv = intervals[query.interval];
    EXPECT_GE(query.tokens.size(), iv.lo);
    EXPECT_LT(query.tokens.size(), iv.hi);
  }
}

TEST(QueryBenchmarkTest, SamplesWithoutReplacement) {
  const Corpus corpus = GenerateCorpus(TwitterSpec(0.05));
  util::Rng rng(11);
  const auto queries = SampleQueriesUniform(corpus, 100, &rng);
  std::set<SetId> sources;
  for (const auto& query : queries) sources.insert(query.source_set);
  EXPECT_EQ(sources.size(), queries.size());
}

TEST(QueryBenchmarkTest, IntervalsCoverScaledRange) {
  const auto intervals = WdcIntervals(500);
  EXPECT_GE(intervals.size(), 2u);
  EXPECT_GT(intervals.back().hi, 500u);
  for (size_t i = 0; i < intervals.size(); ++i) {
    EXPECT_LT(intervals[i].lo, intervals[i].hi);
  }
}

TEST(QueryBenchmarkTest, UniformSampleCapsAtCorpusSize) {
  const Corpus corpus = GenerateCorpus(TwitterSpec(0.002));
  util::Rng rng(13);
  const auto queries = SampleQueriesUniform(corpus, 10'000, &rng);
  EXPECT_EQ(queries.size(), corpus.NumSets());
}

}  // namespace
}  // namespace koios::data
