#include <gtest/gtest.h>

#include <vector>

#include "koios/matching/greedy.h"
#include "koios/matching/hungarian.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/util/rng.h"
#include "test_util.h"

namespace koios::matching {
namespace {

// ------------------------------------------------------------- Hungarian --

TEST(HungarianTest, EmptyMatrix) {
  WeightMatrix m(0, 0);
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_DOUBLE_EQ(r.score, 0.0);
  EXPECT_FALSE(r.early_terminated);
}

TEST(HungarianTest, SingleEdge) {
  WeightMatrix m(1, 1);
  m.At(0, 0) = 0.7;
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_DOUBLE_EQ(r.score, 0.7);
  ASSERT_EQ(r.match_of_row.size(), 1u);
  EXPECT_EQ(r.match_of_row[0], 0);
}

TEST(HungarianTest, PicksCrossAssignmentOverGreedy) {
  // Greedy takes (0,0)=1.0 then 0; optimum is (0,1)+(1,0) = 1.8.
  WeightMatrix m(2, 2);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 0.9;
  m.At(1, 0) = 0.9;
  m.At(1, 1) = 0.0;
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_NEAR(r.score, 1.8, 1e-12);
  EXPECT_EQ(r.match_of_row[0], 1);
  EXPECT_EQ(r.match_of_row[1], 0);
  // Greedy confirms the example's suboptimality.
  EXPECT_NEAR(GreedyMatch(m).score, 1.0, 1e-12);
}

TEST(HungarianTest, RectangularMoreRows) {
  WeightMatrix m(3, 2);
  m.At(0, 0) = 0.5;
  m.At(1, 0) = 0.9;
  m.At(2, 1) = 0.8;
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_NEAR(r.score, 1.7, 1e-12);
  EXPECT_EQ(r.match_of_row[0], -1);  // row 0 loses column 0 to row 1
}

TEST(HungarianTest, RectangularMoreCols) {
  WeightMatrix m(2, 4);
  m.At(0, 3) = 0.6;
  m.At(1, 3) = 0.9;
  m.At(1, 2) = 0.5;
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_NEAR(r.score, 1.1, 1e-12);
}

TEST(HungarianTest, OptionalMatchingSkipsZeroEdges) {
  // A perfect matching would force a zero edge; score must not require it.
  WeightMatrix m(2, 2);
  m.At(0, 0) = 0.9;  // (1,1) has weight 0
  const MatchResult r = HungarianMatcher::Solve(m);
  EXPECT_NEAR(r.score, 0.9, 1e-12);
  EXPECT_EQ(r.match_of_row[1], -1);
}

TEST(HungarianTest, LabelSumUpperBoundsScore) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.NextBounded(6);
    WeightMatrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.At(i, j) = rng.NextBool(0.5) ? rng.NextDouble() : 0.0;
      }
    }
    const MatchResult r = HungarianMatcher::Solve(m);
    EXPECT_GE(r.label_sum + 1e-9, r.score);
  }
}

TEST(HungarianTest, EarlyTerminationFiresWhenOptimumBelowThreshold) {
  WeightMatrix m(2, 2);
  m.At(0, 0) = 0.3;
  m.At(1, 1) = 0.3;
  const MatchResult r = HungarianMatcher::Solve(m, /*prune_threshold=*/5.0);
  EXPECT_TRUE(r.early_terminated);
}

TEST(HungarianTest, EarlyTerminationDoesNotFireWhenOptimumAbove) {
  WeightMatrix m(2, 2);
  m.At(0, 0) = 0.9;
  m.At(1, 1) = 0.9;
  const MatchResult r = HungarianMatcher::Solve(m, /*prune_threshold=*/1.0);
  EXPECT_FALSE(r.early_terminated);
  EXPECT_NEAR(r.score, 1.8, 1e-12);
}

TEST(HungarianTest, EarlyTerminationNeverFalselyPrunes) {
  // Property: if ET fires with threshold t, the true optimum is < t.
  util::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t rows = 1 + rng.NextBounded(5);
    const size_t cols = 1 + rng.NextBounded(5);
    WeightMatrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        m.At(i, j) = rng.NextBool(0.6) ? 0.5 + 0.5 * rng.NextDouble() : 0.0;
      }
    }
    const double exact = HungarianMatcher::Solve(m).score;
    const double threshold = rng.NextDouble() * 3.0;
    const MatchResult pruned = HungarianMatcher::Solve(m, threshold);
    if (pruned.early_terminated) {
      EXPECT_LT(exact, threshold + 1e-9)
          << "false prune at trial " << trial;
    } else {
      EXPECT_NEAR(pruned.score, exact, 1e-9);
    }
  }
}

// Brute-force optimal matching by permutation enumeration (n <= 6).
double BruteForceMatching(const WeightMatrix& m) {
  const size_t rows = m.rows(), cols = m.cols();
  std::vector<int> cols_perm(cols);
  for (size_t j = 0; j < cols; ++j) cols_perm[j] = static_cast<int>(j);
  double best = 0.0;
  // Try all subsets implicitly via permutations of columns against rows.
  std::sort(cols_perm.begin(), cols_perm.end());
  do {
    double score = 0.0;
    const size_t lim = std::min(rows, cols);
    for (size_t i = 0; i < lim; ++i) {
      score += m.At(i, cols_perm[i]);
    }
    best = std::max(best, score);
  } while (std::next_permutation(cols_perm.begin(), cols_perm.end()));
  // Permutations only cover row-prefix assignments; iterate row subsets by
  // also permuting rows (small n, acceptable).
  return best;
}

TEST(HungarianTest, MatchesPermutationOracleOnSquare) {
  util::Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.NextBounded(4);  // 2..5
    WeightMatrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        m.At(i, j) = rng.NextBool(0.7) ? rng.NextDouble() : 0.0;
      }
    }
    // For square matrices the permutation oracle is exhaustive.
    EXPECT_NEAR(HungarianMatcher::Solve(m).score, BruteForceMatching(m), 1e-9)
        << "trial " << trial;
  }
}

// ---------------------------------------------------------------- Greedy --

TEST(GreedyTest, EmptyEdges) {
  EXPECT_DOUBLE_EQ(GreedyMatchEdges({}).score, 0.0);
}

TEST(GreedyTest, RespectsOneToOne) {
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.9}, {0, 1, 0.8}, {1, 0, 0.7}, {1, 1, 0.1}};
  const GreedyResult r = GreedyMatchEdges(edges);
  EXPECT_NEAR(r.score, 1.0, 1e-12);  // 0.9 + 0.1
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_EQ(r.pairs[0], (std::pair<uint32_t, uint32_t>{0, 0}));
}

TEST(GreedyTest, IgnoresNonPositiveWeights) {
  std::vector<WeightedEdge> edges = {{0, 0, 0.0}, {1, 1, -1.0}, {2, 2, 0.4}};
  const GreedyResult r = GreedyMatchEdges(edges);
  EXPECT_NEAR(r.score, 0.4, 1e-12);
  EXPECT_EQ(r.pairs.size(), 1u);
}

TEST(GreedyTest, WithinFactorTwoOfOptimal) {
  // Lemma 3: greedy >= SO / 2; also greedy <= SO.
  util::Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t rows = 1 + rng.NextBounded(6);
    const size_t cols = 1 + rng.NextBounded(6);
    WeightMatrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        m.At(i, j) = rng.NextBool(0.5) ? rng.NextDouble() : 0.0;
      }
    }
    const double optimal = HungarianMatcher::Solve(m).score;
    const double greedy = GreedyMatch(m).score;
    EXPECT_LE(greedy, optimal + 1e-9);
    EXPECT_GE(greedy, optimal / 2.0 - 1e-9);
  }
}

// ------------------------------------------------------- SemanticOverlap --

TEST(SemanticOverlapTest, VanillaOverlapIsLowerBound) {
  // Lemma 1: |Q ∩ C| <= SO(Q, C) for any α <= 1.
  testing::TableSimilarity sim;
  sim.Set(0, 10, 0.9);
  const std::vector<TokenId> q = {0, 1, 2};
  const std::vector<TokenId> c = {1, 2, 10};
  const Score so = SemanticOverlap(q, c, sim, 0.8);
  EXPECT_GE(so, 2.0 - 1e-12);        // overlap {1, 2}
  EXPECT_NEAR(so, 2.9, 1e-12);       // plus edge (0, 10)
}

TEST(SemanticOverlapTest, AlphaClampsWeakEdges) {
  testing::TableSimilarity sim;
  sim.Set(0, 10, 0.75);
  const std::vector<TokenId> q = {0};
  const std::vector<TokenId> c = {10};
  EXPECT_NEAR(SemanticOverlap(q, c, sim, 0.7), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(SemanticOverlap(q, c, sim, 0.8), 0.0);
}

TEST(SemanticOverlapTest, SymmetricMeasure) {
  testing::TableSimilarity sim;
  sim.Set(0, 10, 0.9);
  sim.Set(1, 11, 0.8);
  sim.Set(0, 11, 0.85);
  const std::vector<TokenId> q = {0, 1, 2};
  const std::vector<TokenId> c = {10, 11, 2};
  EXPECT_NEAR(SemanticOverlap(q, c, sim, 0.7),
              SemanticOverlap(c, q, sim, 0.7), 1e-12);
}

TEST(SemanticOverlapTest, GraphRestrictionKeepsOnlyIncidentNodes) {
  testing::TableSimilarity sim;
  sim.Set(0, 10, 0.9);
  const std::vector<TokenId> q = {0, 1, 2, 3, 4};
  const std::vector<TokenId> c = {10, 20, 21, 22};
  const BipartiteGraph g = BuildGraph(q, c, sim, 0.8);
  EXPECT_EQ(g.query_rows.size(), 1u);
  EXPECT_EQ(g.set_cols.size(), 1u);
  EXPECT_EQ(g.edges, 1u);
}

TEST(SemanticOverlapTest, BoundedByMinCardinality) {
  testing::TableSimilarity sim;
  for (TokenId a = 0; a < 3; ++a) {
    for (TokenId b = 10; b < 16; ++b) sim.Set(a, b, 0.95);
  }
  const std::vector<TokenId> q = {0, 1, 2};
  const std::vector<TokenId> c = {10, 11, 12, 13, 14, 15};
  const Score so = SemanticOverlap(q, c, sim, 0.8);
  EXPECT_LE(so, 3.0 + 1e-12);
  EXPECT_NEAR(so, 3 * 0.95, 1e-12);
}

}  // namespace
}  // namespace koios::matching
