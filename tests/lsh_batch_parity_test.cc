// Parity tests for the batched LSH / MinHash probe path (ISSUE 2): the
// candidate batches scored through SimilarityBatch[Multi] must reproduce
// the seed's pairwise-scored, eagerly-sorted cursors exactly. The seed
// pipelines are reimplemented here verbatim (same hash constructions, same
// per-candidate virtual scoring, same eager sort) as independent
// references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "koios/data/string_corpus.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/jaccard_qgram_similarity.h"
#include "koios/sim/lsh_index.h"
#include "koios/sim/minhash_index.h"
#include "koios/text/qgram.h"
#include "koios/util/rng.h"
#include "koios/util/thread_pool.h"

namespace koios::sim {
namespace {

// ---------------------------------------------------------------------------
// Seed reference: random-hyperplane LSH, reproduced from the seed sources.
// Bucket tables built with the same Rng(seed) draw order and signature
// construction as CosineLshIndex, candidates scored one virtual
// Similarity() call at a time, neighbors sorted eagerly.
class SeedLshReference {
 public:
  SeedLshReference(const std::vector<TokenId>& vocabulary,
                   const embedding::EmbeddingStore* store,
                   const SimilarityFunction* sim, const LshIndexSpec& spec)
      : store_(store), sim_(sim), spec_(spec) {
    util::Rng rng(spec_.seed);
    const size_t dim = store_->dim();
    hyperplanes_.resize(spec_.num_tables * spec_.bits_per_table);
    for (auto& h : hyperplanes_) {
      h.resize(dim);
      for (auto& x : h) x = static_cast<float>(rng.NextGaussian());
    }
    tables_.resize(spec_.num_tables);
    for (TokenId t : vocabulary) {
      if (!store_->Has(t)) continue;
      const auto vec = store_->VectorOf(t);
      for (size_t table = 0; table < spec_.num_tables; ++table) {
        tables_[table][SignatureOf(vec, table)].push_back(t);
      }
    }
  }

  std::vector<Neighbor> Stream(TokenId q, Score alpha) const {
    std::vector<Neighbor> neighbors;
    if (!store_->Has(q)) return neighbors;
    const auto vec = store_->VectorOf(q);
    std::unordered_set<TokenId> candidates;
    for (size_t table = 0; table < spec_.num_tables; ++table) {
      auto it = tables_[table].find(SignatureOf(vec, table));
      if (it == tables_[table].end()) continue;
      candidates.insert(it->second.begin(), it->second.end());
    }
    for (TokenId t : candidates) {
      if (t == q) continue;
      const Score s = sim_->Similarity(q, t);
      if (s >= alpha) neighbors.push_back({t, s});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.token < b.token;
              });
    return neighbors;
  }

 private:
  uint64_t SignatureOf(std::span<const float> vec, size_t table) const {
    uint64_t sig = 0;
    const size_t base = table * spec_.bits_per_table;
    for (size_t bit = 0; bit < spec_.bits_per_table; ++bit) {
      const auto& h = hyperplanes_[base + bit];
      double dot = 0.0;
      for (size_t d = 0; d < vec.size(); ++d) {
        dot += static_cast<double>(h[d]) * vec[d];
      }
      sig = (sig << 1) | (dot >= 0.0 ? 1u : 0u);
    }
    return sig;
  }

  const embedding::EmbeddingStore* store_;
  const SimilarityFunction* sim_;
  LshIndexSpec spec_;
  std::vector<std::vector<float>> hyperplanes_;
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> tables_;
};

// ---------------------------------------------------------------------------
// Seed reference: MinHash banding, reproduced from the seed sources (same
// FNV-1a row hashes, signature minima and band keys), with per-candidate
// virtual scoring and an eager sort.
class SeedMinHashReference {
 public:
  SeedMinHashReference(const std::vector<TokenId>& vocabulary,
                       const JaccardQGramSimilarity* sim,
                       const MinHashIndexSpec& spec)
      : sim_(sim), spec_(spec) {
    util::Rng rng(spec_.seed);
    hash_seeds_.resize(spec_.num_bands * spec_.rows_per_band);
    for (auto& s : hash_seeds_) s = rng.NextUint64();
    bands_.resize(spec_.num_bands);
    for (TokenId t : vocabulary) {
      const auto signature = SignatureOf(sim_->GramsOf(t));
      for (size_t band = 0; band < spec_.num_bands; ++band) {
        bands_[band][BandKey(signature, band)].push_back(t);
      }
    }
  }

  std::vector<Neighbor> Stream(TokenId q, Score alpha) const {
    const auto signature = SignatureOf(sim_->GramsOf(q));
    std::unordered_set<TokenId> candidates;
    for (size_t band = 0; band < spec_.num_bands; ++band) {
      auto it = bands_[band].find(BandKey(signature, band));
      if (it == bands_[band].end()) continue;
      candidates.insert(it->second.begin(), it->second.end());
    }
    std::vector<Neighbor> neighbors;
    for (TokenId t : candidates) {
      if (t == q) continue;
      // Seed scoring: string-gram merge Jaccard, independent of the
      // interned-id kernel under test.
      const Score s = t == q ? 1.0
                             : text::JaccardSorted(sim_->GramsOf(q),
                                                   sim_->GramsOf(t));
      if (s >= alpha) neighbors.push_back({t, s});
    }
    std::sort(neighbors.begin(), neighbors.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.token < b.token;
              });
    return neighbors;
  }

 private:
  std::vector<uint64_t> SignatureOf(
      const std::vector<std::string>& grams) const {
    std::vector<uint64_t> signature(hash_seeds_.size(),
                                    std::numeric_limits<uint64_t>::max());
    for (const auto& gram : grams) {
      for (size_t row = 0; row < hash_seeds_.size(); ++row) {
        signature[row] =
            std::min(signature[row], HashGram(gram, hash_seeds_[row]));
      }
    }
    return signature;
  }

  static uint64_t HashGram(const std::string& gram, uint64_t seed) {
    uint64_t h = 14695981039346656037ull ^ seed;
    for (unsigned char c : gram) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    return h;
  }

  uint64_t BandKey(const std::vector<uint64_t>& signature, size_t band) const {
    uint64_t key = 0xCBF29CE484222325ull + band;
    for (size_t r = 0; r < spec_.rows_per_band; ++r) {
      key ^= signature[band * spec_.rows_per_band + r] +
             0x9E3779B97F4A7C15ull + (key << 6) + (key >> 2);
    }
    return key;
  }

  const JaccardQGramSimilarity* sim_;
  MinHashIndexSpec spec_;
  std::vector<uint64_t> hash_seeds_;
  std::vector<std::unordered_map<uint64_t, std::vector<TokenId>>> bands_;
};

std::vector<Neighbor> Drain(SimilarityIndex* index, TokenId q, Score alpha) {
  std::vector<Neighbor> out;
  while (auto n = index->NextNeighbor(q, alpha)) out.push_back(*n);
  return out;
}

// `sim_tolerance` 0 demands bit-identical scores (Jaccard: both paths
// divide the same integer counts). The cosine paths accumulate in a
// different (vectorized) order than the seed's serial loop, so they agree
// to ~1e-15, not bit-for-bit; random corpora have no distinct-token ties
// at that scale, so the order is still uniquely determined.
void ExpectSameStream(const std::vector<Neighbor>& got,
                      const std::vector<Neighbor>& want, TokenId q,
                      double sim_tolerance = 0.0) {
  ASSERT_EQ(got.size(), want.size()) << "q=" << q;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].token, want[i].token) << "q=" << q << " pos " << i;
    if (sim_tolerance == 0.0) {
      EXPECT_DOUBLE_EQ(got[i].sim, want[i].sim) << "q=" << q << " pos " << i;
    } else {
      EXPECT_NEAR(got[i].sim, want[i].sim, sim_tolerance)
          << "q=" << q << " pos " << i;
    }
  }
}

// --------------------------------------------------------- LSH vs seed ----

TEST(LshBatchParityTest, BatchedProbesEqualSeedPairwisePath) {
  embedding::SyntheticModelSpec spec;
  spec.vocab_size = 600;
  spec.dim = 48;
  spec.avg_cluster_size = 12.0;
  spec.noise_sigma = 0.4;
  spec.coverage = 0.85;  // keep OOV tokens in play
  spec.seed = 321;
  embedding::SyntheticEmbeddingModel model(spec);
  CosineEmbeddingSimilarity sim(&model.store());
  std::vector<TokenId> vocab(spec.vocab_size);
  for (TokenId t = 0; t < spec.vocab_size; ++t) vocab[t] = t;

  LshIndexSpec lsh;
  lsh.num_tables = 6;
  lsh.bits_per_table = 8;
  CosineLshIndex index(vocab, &model.store(), &sim, lsh);
  SeedLshReference seed(vocab, &model.store(), &sim, lsh);

  util::Rng rng(7);
  for (const Score alpha : {0.3, 0.6, 0.85}) {
    for (int i = 0; i < 25; ++i) {
      const TokenId q = static_cast<TokenId>(rng.NextBounded(spec.vocab_size));
      // Reset per query: a repeated draw would otherwise drain an already
      // exhausted cursor.
      index.ResetCursors();
      ExpectSameStream(Drain(&index, q, alpha), seed.Stream(q, alpha), q,
                       1e-12);
    }
  }
}

TEST(LshBatchParityTest, PrewarmedBlockPathEqualsColdSinglePath) {
  embedding::SyntheticModelSpec spec;
  spec.vocab_size = 500;
  spec.dim = 32;
  spec.avg_cluster_size = 10.0;
  spec.noise_sigma = 0.35;
  spec.coverage = 0.9;
  spec.seed = 55;
  embedding::SyntheticEmbeddingModel model(spec);
  CosineEmbeddingSimilarity sim(&model.store());
  std::vector<TokenId> vocab(spec.vocab_size);
  for (TokenId t = 0; t < spec.vocab_size; ++t) vocab[t] = t;

  LshIndexSpec lsh;
  lsh.num_tables = 8;
  lsh.bits_per_table = 7;
  util::ThreadPool pool(4);
  CosineLshIndex warmed(vocab, &model.store(), &sim, lsh, &pool);
  CosineLshIndex cold(vocab, &model.store(), &sim, lsh);

  std::vector<TokenId> queries;
  util::Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    queries.push_back(static_cast<TokenId>(rng.NextBounded(spec.vocab_size)));
  }
  const Score alpha = 0.4;
  // The warmed index builds cursors through the multi-query union kernel;
  // the cold one through per-query single scans. Streams must agree.
  warmed.Prewarm(queries, alpha);
  for (TokenId q : queries) {
    // Single- and multi-query cosine kernels share an accumulation shape,
    // so these two paths ARE bit-identical.
    ExpectSameStream(Drain(&warmed, q, alpha), Drain(&cold, q, alpha), q);
  }
}

// ----------------------------------------------------- MinHash vs seed ----

TEST(MinHashBatchParityTest, BatchedProbesEqualSeedPairwisePath) {
  data::StringCorpusSpec spec;
  spec.num_sets = 60;
  spec.num_base_words = 250;
  spec.typos_per_word = 2;
  spec.seed = 99;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  JaccardQGramSimilarity jaccard(&corpus.dict, 3);

  MinHashIndexSpec mh;
  mh.num_bands = 20;
  mh.rows_per_band = 3;
  MinHashIndex index(corpus.vocabulary, &jaccard, mh);
  SeedMinHashReference seed(corpus.vocabulary, &jaccard, mh);

  for (const Score alpha : {0.3, 0.5, 0.7}) {
    index.ResetCursors();
    for (size_t i = 0; i < corpus.vocabulary.size(); i += 9) {
      const TokenId q = corpus.vocabulary[i];
      ExpectSameStream(Drain(&index, q, alpha), seed.Stream(q, alpha), q);
    }
  }
}

TEST(MinHashBatchParityTest, PrewarmedBlockPathEqualsColdSinglePath) {
  data::StringCorpusSpec spec;
  spec.num_sets = 50;
  spec.num_base_words = 200;
  spec.seed = 43;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  JaccardQGramSimilarity jaccard(&corpus.dict, 3);

  MinHashIndexSpec mh;
  util::ThreadPool pool(3);
  MinHashIndex warmed(corpus.vocabulary, &jaccard, mh, &pool);
  MinHashIndex cold(corpus.vocabulary, &jaccard, mh);

  std::vector<TokenId> queries;
  for (size_t i = 0; i < corpus.vocabulary.size(); i += 7) {
    queries.push_back(corpus.vocabulary[i]);
  }
  const Score alpha = 0.45;
  warmed.Prewarm(queries, alpha);
  for (TokenId q : queries) {
    ExpectSameStream(Drain(&warmed, q, alpha), Drain(&cold, q, alpha), q);
  }
}

// ------------------------------------------- Jaccard interned-id kernel ----

TEST(JaccardBatchTest, InternedIdSimilarityMatchesStringGramJaccard) {
  data::StringCorpusSpec spec;
  spec.num_sets = 40;
  spec.num_base_words = 150;
  spec.seed = 17;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  JaccardQGramSimilarity jaccard(&corpus.dict, 3);

  // Pairwise and batched id-merge values must equal the string-gram
  // reference exactly (interning is a bijection on gram sets).
  std::vector<Score> batch(corpus.vocabulary.size());
  for (size_t i = 0; i < corpus.vocabulary.size(); i += 11) {
    const TokenId q = corpus.vocabulary[i];
    jaccard.SimilarityBatch(q, corpus.vocabulary, batch);
    for (size_t j = 0; j < corpus.vocabulary.size(); ++j) {
      const TokenId t = corpus.vocabulary[j];
      const double reference =
          t == q ? 1.0 : text::JaccardSorted(jaccard.GramsOf(q), jaccard.GramsOf(t));
      EXPECT_DOUBLE_EQ(jaccard.Similarity(q, t), reference)
          << "q=" << q << " t=" << t;
      EXPECT_DOUBLE_EQ(batch[j], reference) << "q=" << q << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace koios::sim
