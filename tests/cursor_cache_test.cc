// The sharded shared cursor cache under concurrency (ISSUE 4 satellite):
// per-query sessions over one BatchedNeighborIndex must stream identical
// neighbor sequences no matter how many threads hammer the cache, because
// cursor payloads are deterministic in (token, α) and the lazy ordering's
// sorted prefix is one unique sequence under the strict total order.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/sim/exact_knn_index.h"
#include "koios/sim/lsh_index.h"
#include "koios/util/rng.h"
#include "test_util.h"

namespace koios::sim {
namespace {

std::vector<TokenId> FullVocabulary(size_t n) {
  std::vector<TokenId> vocab(n);
  for (size_t i = 0; i < n; ++i) vocab[i] = static_cast<TokenId>(i);
  return vocab;
}

/// Drains a token's stream through `index` and returns the sequence.
std::vector<Neighbor> Drain(SimilarityIndex* index, TokenId q, Score alpha) {
  std::vector<Neighbor> out;
  while (auto n = index->NextNeighbor(q, alpha)) out.push_back(*n);
  return out;
}

TEST(CursorCacheTest, SessionsShareCursorPayloads) {
  auto w = testing::MakeRandomWorkload(40, 400, 5, 15, 9001);
  auto s1 = w.index->NewSession();
  auto s2 = w.index->NewSession();
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);

  const auto a = Drain(s1.get(), 7, 0.5);
  const CursorCacheStats after_first = w.index->cursor_cache_stats();
  const auto b = Drain(s2.get(), 7, 0.5);
  const CursorCacheStats after_second = w.index->cursor_cache_stats();

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].token, b[i].token);
    EXPECT_DOUBLE_EQ(a[i].sim, b[i].sim);
  }
  // The second session reused the first one's build: misses unchanged,
  // hits grew.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(CursorCacheTest, AlphaKeyedEntriesCoexist) {
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9002);
  auto s1 = w.index->NewSession();
  auto s2 = w.index->NewSession();
  // Same token at two thresholds concurrently alive: each session keeps
  // streaming from its own α cursor (the old single-slot cache would have
  // rebuilt and clobbered).
  const auto strict = Drain(s1.get(), 11, 0.8);
  const auto loose = Drain(s2.get(), 11, 0.4);
  EXPECT_GE(loose.size(), strict.size());
  for (const Neighbor& n : strict) EXPECT_GE(n.sim, 0.8);
  // Re-draining either α on fresh sessions hits the cache.
  const CursorCacheStats before = w.index->cursor_cache_stats();
  auto s3 = w.index->NewSession();
  const auto strict_again = Drain(s3.get(), 11, 0.8);
  EXPECT_EQ(w.index->cursor_cache_stats().misses, before.misses);
  ASSERT_EQ(strict_again.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(strict_again[i].token, strict[i].token);
  }
}

TEST(CursorCacheTest, LegacyResetCursorsKeepsPayloads) {
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9003);
  const auto first = Drain(w.index.get(), 3, 0.5);
  const CursorCacheStats warm = w.index->cursor_cache_stats();
  w.index->ResetCursors();
  const auto second = Drain(w.index.get(), 3, 0.5);
  // Positions restarted, payload reused.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(w.index->cursor_cache_stats().misses, warm.misses);
  w.index->ClearCursorCache();
  EXPECT_EQ(w.index->cursor_cache_stats().cursors, 0u);
}

// ----------------------------------------------- 8-thread hammer (TSan) --

TEST(CursorCacheTest, EightThreadHammerMatchesColdIndex) {
  // 8 threads × private sessions, overlapping tokens and both α values,
  // racing on cache insertion AND on each shared cursor's lazy ordering.
  // Every drained sequence must equal the one a cold single-threaded index
  // produces. This is the regression test the ThreadSanitizer CI job runs.
  constexpr size_t kThreads = 8;
  constexpr size_t kTokensPerThread = 24;
  const Score alphas[] = {0.45, 0.7};

  auto w = testing::MakeRandomWorkload(60, 500, 5, 20, 9004);
  const std::vector<TokenId>& vocab = w.corpus.vocabulary;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kThreads);
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      util::Rng rng(100 + ti);
      auto session = w.index->NewSession();
      // Per-thread cold reference over a PRIVATE index (its own cache), so
      // comparisons never synchronize through the hammered one. Same
      // vocabulary as the workload index.
      ExactKnnIndex reference(vocab, w.sim.get());
      for (size_t i = 0; i < kTokensPerThread; ++i) {
        const TokenId q = vocab[rng.NextBounded(vocab.size())];
        const Score alpha = alphas[rng.NextBounded(2)];
        // Interleave bounded probes to exercise the withheld fast path.
        if (i % 3 == 1) {
          Neighbor out;
          (void)session->NextNeighborBounded(q, alpha, 0.99, &out);
          session->ResetCursors();
        }
        const auto got = Drain(session.get(), q, alpha);
        const auto want = Drain(&reference, q, alpha);
        if (got.size() != want.size()) {
          errors[ti] = "size mismatch";
          failed.store(true);
          return;
        }
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j].token != want[j].token || got[j].sim != want[j].sim) {
            errors[ti] = "sequence mismatch";
            failed.store(true);
            return;
          }
        }
        // Restart both consumers so repeated draws of the same token
        // re-drain from the top (payloads stay cached).
        session->ResetCursors();
        reference.ResetCursors();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t ti = 0; ti < kThreads; ++ti) {
    EXPECT_TRUE(errors[ti].empty()) << "thread " << ti << ": " << errors[ti];
  }
  ASSERT_FALSE(failed.load());
  const CursorCacheStats stats = w.index->cursor_cache_stats();
  // Cross-thread reuse must actually have happened: way fewer builds than
  // resolutions. (Duplicate builds are allowed — racing builders — but
  // every one of them is counted, not lost.)
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.hits + stats.misses,
            kThreads * kTokensPerThread);
  EXPECT_LE(stats.cursors, stats.misses);
}

TEST(CursorCacheTest, BucketBackendSessionsAreConsistent) {
  // Sessions also work over an approximate backend (per-query candidate
  // collection instead of a shared vocabulary scan).
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9005);
  LshIndexSpec spec;
  CosineLshIndex lsh(FullVocabulary(300), &w.model->store(), w.sim.get(),
                     spec);
  auto s1 = lsh.NewSession();
  auto s2 = lsh.NewSession();
  for (TokenId q : {TokenId{5}, TokenId{99}, TokenId{200}}) {
    const auto a = Drain(s1.get(), q, 0.5);
    const auto b = Drain(s2.get(), q, 0.5);
    ASSERT_EQ(a.size(), b.size()) << "q=" << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].token, b[i].token) << "q=" << q;
      EXPECT_DOUBLE_EQ(a[i].sim, b[i].sim) << "q=" << q;
    }
  }
}

}  // namespace
}  // namespace koios::sim
