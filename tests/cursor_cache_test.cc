// The sharded shared cursor cache under concurrency (ISSUE 4 satellite):
// per-query sessions over one BatchedNeighborIndex must stream identical
// neighbor sequences no matter how many threads hammer the cache, because
// cursor payloads are deterministic in (token, α) and the lazy ordering's
// sorted prefix is one unique sequence under the strict total order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/sim/exact_knn_index.h"
#include "koios/sim/lsh_index.h"
#include "koios/util/rng.h"
#include "test_util.h"

namespace koios::sim {
namespace {

std::vector<TokenId> FullVocabulary(size_t n) {
  std::vector<TokenId> vocab(n);
  for (size_t i = 0; i < n; ++i) vocab[i] = static_cast<TokenId>(i);
  return vocab;
}

/// Drains a token's stream through `index` and returns the sequence.
std::vector<Neighbor> Drain(SimilarityIndex* index, TokenId q, Score alpha) {
  std::vector<Neighbor> out;
  while (auto n = index->NextNeighbor(q, alpha)) out.push_back(*n);
  return out;
}

TEST(CursorCacheTest, SessionsShareCursorPayloads) {
  auto w = testing::MakeRandomWorkload(40, 400, 5, 15, 9001);
  auto s1 = w.index->NewSession();
  auto s2 = w.index->NewSession();
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);

  const auto a = Drain(s1.get(), 7, 0.5);
  const CursorCacheStats after_first = w.index->cursor_cache_stats();
  const auto b = Drain(s2.get(), 7, 0.5);
  const CursorCacheStats after_second = w.index->cursor_cache_stats();

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].token, b[i].token);
    EXPECT_DOUBLE_EQ(a[i].sim, b[i].sim);
  }
  // The second session reused the first one's build: misses unchanged,
  // hits grew.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST(CursorCacheTest, AlphaKeyedEntriesCoexist) {
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9002);
  auto s1 = w.index->NewSession();
  auto s2 = w.index->NewSession();
  // Same token at two thresholds concurrently alive: each session keeps
  // streaming from its own α cursor (the old single-slot cache would have
  // rebuilt and clobbered).
  const auto strict = Drain(s1.get(), 11, 0.8);
  const auto loose = Drain(s2.get(), 11, 0.4);
  EXPECT_GE(loose.size(), strict.size());
  for (const Neighbor& n : strict) EXPECT_GE(n.sim, 0.8);
  // Re-draining either α on fresh sessions hits the cache.
  const CursorCacheStats before = w.index->cursor_cache_stats();
  auto s3 = w.index->NewSession();
  const auto strict_again = Drain(s3.get(), 11, 0.8);
  EXPECT_EQ(w.index->cursor_cache_stats().misses, before.misses);
  ASSERT_EQ(strict_again.size(), strict.size());
  for (size_t i = 0; i < strict.size(); ++i) {
    EXPECT_EQ(strict_again[i].token, strict[i].token);
  }
}

TEST(CursorCacheTest, LegacyResetCursorsKeepsPayloads) {
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9003);
  const auto first = Drain(w.index.get(), 3, 0.5);
  const CursorCacheStats warm = w.index->cursor_cache_stats();
  w.index->ResetCursors();
  const auto second = Drain(w.index.get(), 3, 0.5);
  // Positions restarted, payload reused.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(w.index->cursor_cache_stats().misses, warm.misses);
  w.index->ClearCursorCache();
  EXPECT_EQ(w.index->cursor_cache_stats().cursors, 0u);
}

// ------------------------------------------- byte budget + CLOCK eviction --

TEST(CursorCacheTest, EvictionRespectsByteBudget) {
  auto w = testing::MakeRandomWorkload(40, 400, 5, 15, 9006);
  auto session = w.index->NewSession();
  // Warm a spread of tokens unbounded and record the footprint.
  for (TokenId t = 0; t < 120; ++t) (void)session->NextNeighbor(t, 0.5);
  const sim::CursorCacheStats unbounded = w.index->cursor_cache_stats();
  ASSERT_GT(unbounded.bytes, 0u);
  ASSERT_EQ(unbounded.evictions, 0u);
  // The budget gauge is what the backend's MemoryUsageBytes reports for
  // the cache (ExactKnnIndex adds its vocabulary on top).
  EXPECT_GE(w.index->MemoryUsageBytes(), unbounded.bytes);

  // Halving the budget must evict down to it immediately and keep the
  // accounting exact (bytes == what a fresh shard walk would sum).
  const size_t cap = unbounded.bytes / 2;
  w.index->SetCursorCacheCapacity(cap);
  const sim::CursorCacheStats bounded = w.index->cursor_cache_stats();
  EXPECT_LE(bounded.bytes, cap);
  EXPECT_GT(bounded.evictions, 0u);
  EXPECT_LT(bounded.cursors, unbounded.cursors);
  EXPECT_EQ(bounded.capacity_bytes, cap);

  // The cap holds after EVERY publish from here on (single-threaded, so
  // no transient in-flight overshoot can be observed).
  for (TokenId t = 120; t < 240; ++t) {
    (void)session->NextNeighbor(t, 0.5);
    EXPECT_LE(w.index->cursor_cache_stats().bytes, cap) << "token " << t;
  }
}

TEST(CursorCacheTest, EvictionNeverInvalidatesLiveSessions) {
  auto w = testing::MakeRandomWorkload(40, 400, 5, 15, 9007);
  const Score alpha = 0.45;

  // Cold reference sequence from a private index; pick a stored token
  // with a non-trivial neighborhood so the eviction lands mid-stream.
  sim::ExactKnnIndex reference(w.corpus.vocabulary, w.sim.get());
  TokenId probe = kInvalidToken;
  std::vector<sim::Neighbor> want;
  for (const TokenId t : w.corpus.vocabulary) {
    reference.ResetCursors();
    want = Drain(&reference, t, alpha);
    if (want.size() > 4) {
      probe = t;
      break;
    }
  }
  ASSERT_NE(probe, kInvalidToken) << "no token with > 4 neighbors at α";
  reference.ClearCursorCache();

  // Consume a prefix, then force the cache to drop EVERYTHING (capacity
  // below any payload): the session's shared_ptr keeps the evicted
  // payload alive and the stream continues bit-identically.
  auto session = w.index->NewSession();
  std::vector<sim::Neighbor> got;
  for (size_t i = 0; i < 3; ++i) got.push_back(*session->NextNeighbor(probe, alpha));
  w.index->SetCursorCacheCapacity(1);
  EXPECT_EQ(w.index->cursor_cache_stats().cursors, 0u);
  while (auto n = session->NextNeighbor(probe, alpha)) got.push_back(*n);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].token, want[i].token);
    EXPECT_DOUBLE_EQ(got[i].sim, want[i].sim);
  }

  // A fresh session rebuilds the evicted cursor deterministically.
  w.index->SetCursorCacheCapacity(0);  // unbounded again
  auto fresh = w.index->NewSession();
  const auto rebuilt = Drain(fresh.get(), probe, alpha);
  ASSERT_EQ(rebuilt.size(), want.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].token, want[i].token);
    EXPECT_DOUBLE_EQ(rebuilt[i].sim, want[i].sim);
  }
}

TEST(CursorCacheTest, ClockPrefersEvictingColdEntriesOverHot) {
  auto w = testing::MakeRandomWorkload(40, 400, 5, 15, 9008);
  auto session = w.index->NewSession();
  // One hot token re-resolved constantly among many cold one-shot tokens.
  const TokenId hot = 3;
  const Score alpha = 0.5;
  w.index->SetCursorCacheCapacity(16 * 1024);
  for (TokenId cold = 10; cold < 300; ++cold) {
    (void)session->NextNeighbor(cold, alpha);
    session->ResetCursors();  // drop the position so re-probes re-resolve
    (void)session->NextNeighbor(hot, alpha);
    session->ResetCursors();
  }
  const sim::CursorCacheStats stats = w.index->cursor_cache_stats();
  ASSERT_GT(stats.evictions, 0u) << "budget never binding — grow the loop";
  // The hot token's hits dominate: every loop iteration after the first
  // should find it cached (its reference bit shields it from the hand).
  // Misses ≈ cold builds (+ the occasional unlucky hot rebuild).
  EXPECT_GT(stats.hits, 250u);
  EXPECT_LT(stats.misses, 330u);
}

// ----------------------------------------------- 8-thread hammer (TSan) --

TEST(CursorCacheTest, EightThreadHammerMatchesColdIndex) {
  // 8 threads × private sessions, overlapping tokens and both α values,
  // racing on cache insertion AND on each shared cursor's lazy ordering.
  // Every drained sequence must equal the one a cold single-threaded index
  // produces. This is the regression test the ThreadSanitizer CI job runs.
  constexpr size_t kThreads = 8;
  constexpr size_t kTokensPerThread = 24;
  const Score alphas[] = {0.45, 0.7};

  auto w = testing::MakeRandomWorkload(60, 500, 5, 20, 9004);
  const std::vector<TokenId>& vocab = w.corpus.vocabulary;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kThreads);
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      util::Rng rng(100 + ti);
      auto session = w.index->NewSession();
      // Per-thread cold reference over a PRIVATE index (its own cache), so
      // comparisons never synchronize through the hammered one. Same
      // vocabulary as the workload index.
      ExactKnnIndex reference(vocab, w.sim.get());
      for (size_t i = 0; i < kTokensPerThread; ++i) {
        const TokenId q = vocab[rng.NextBounded(vocab.size())];
        const Score alpha = alphas[rng.NextBounded(2)];
        // Interleave bounded probes to exercise the withheld fast path.
        if (i % 3 == 1) {
          Neighbor out;
          (void)session->NextNeighborBounded(q, alpha, 0.99, &out);
          session->ResetCursors();
        }
        const auto got = Drain(session.get(), q, alpha);
        const auto want = Drain(&reference, q, alpha);
        if (got.size() != want.size()) {
          errors[ti] = "size mismatch";
          failed.store(true);
          return;
        }
        for (size_t j = 0; j < got.size(); ++j) {
          if (got[j].token != want[j].token || got[j].sim != want[j].sim) {
            errors[ti] = "sequence mismatch";
            failed.store(true);
            return;
          }
        }
        // Restart both consumers so repeated draws of the same token
        // re-drain from the top (payloads stay cached).
        session->ResetCursors();
        reference.ResetCursors();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t ti = 0; ti < kThreads; ++ti) {
    EXPECT_TRUE(errors[ti].empty()) << "thread " << ti << ": " << errors[ti];
  }
  ASSERT_FALSE(failed.load());
  const CursorCacheStats stats = w.index->cursor_cache_stats();
  // Cross-thread reuse must actually have happened: way fewer builds than
  // resolutions. (Duplicate builds are allowed — racing builders — but
  // every one of them is counted, not lost.)
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GE(stats.hits + stats.misses,
            kThreads * kTokensPerThread);
  EXPECT_LE(stats.cursors, stats.misses);
}

TEST(CursorCacheTest, ClearAndEvictUnderLiveSessionsHammer) {
  // ClearCursorCache / SetCursorCacheCapacity concurrent with sessions
  // mid-stream (ISSUE 5 satellite): dropping shard entries while a session
  // holds the payload must never corrupt a sequence — the session's
  // shared_ptr pins the payload; only the CACHE's reference goes away.
  // This is the regression test the ThreadSanitizer CI job runs for the
  // eviction machinery.
  constexpr size_t kThreads = 6;
  constexpr size_t kTokensPerThread = 20;
  auto w = testing::MakeRandomWorkload(60, 500, 5, 20, 9009);
  const std::vector<TokenId>& vocab = w.corpus.vocabulary;

  std::atomic<bool> stop{false};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      util::Rng rng(4200 + ti);
      auto session = w.index->NewSession();
      ExactKnnIndex reference(vocab, w.sim.get());
      for (size_t i = 0; i < kTokensPerThread; ++i) {
        const TokenId q = vocab[rng.NextBounded(vocab.size())];
        // Interleave a partial probe with the full drain so some payloads
        // are held across whatever clears/evictions land in between.
        (void)session->NextNeighbor(q, 0.45);
        const auto got = Drain(session.get(), q, 0.45);
        auto want = Drain(&reference, q, 0.45);
        // `got` misses the first neighbor (consumed by the partial probe).
        if (!want.empty()) want.erase(want.begin());
        if (got.size() != want.size()) {
          ++mismatches;
        } else {
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].token != want[j].token || got[j].sim != want[j].sim) {
              ++mismatches;
              break;
            }
          }
        }
        session->ResetCursors();
        reference.ResetCursors();
      }
    });
  }
  // Maintenance thread: clears and re-caps the live cache continuously.
  std::thread maintenance([&] {
    size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      w.index->ClearCursorCache();
      w.index->SetCursorCacheCapacity((round % 2 == 0) ? 48 * 1024 : 0);
      w.index->EvictToCapacity();
      ++round;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    w.index->SetCursorCacheCapacity(0);
  });
  for (auto& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  maintenance.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(CursorCacheTest, BucketBackendSessionsAreConsistent) {
  // Sessions also work over an approximate backend (per-query candidate
  // collection instead of a shared vocabulary scan).
  auto w = testing::MakeRandomWorkload(40, 300, 5, 15, 9005);
  LshIndexSpec spec;
  CosineLshIndex lsh(FullVocabulary(300), &w.model->store(), w.sim.get(),
                     spec);
  auto s1 = lsh.NewSession();
  auto s2 = lsh.NewSession();
  for (TokenId q : {TokenId{5}, TokenId{99}, TokenId{200}}) {
    const auto a = Drain(s1.get(), q, 0.5);
    const auto b = Drain(s2.get(), q, 0.5);
    ASSERT_EQ(a.size(), b.size()) << "q=" << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].token, b[i].token) << "q=" << q;
      EXPECT_DOUBLE_EQ(a[i].sim, b[i].sim) << "q=" << q;
    }
  }
}

}  // namespace
}  // namespace koios::sim
