// Shared fixtures for the Koios test suite: tiny hand-built repositories,
// synthetic random workloads, and the brute-force oracle every exactness
// test compares against.
#ifndef KOIOS_TESTS_TEST_UTIL_H_
#define KOIOS_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "koios/data/corpus.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/index/set_collection.h"
#include "koios/matching/semantic_overlap.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/similarity.h"
#include "koios/util/types.h"

namespace koios::testing {

/// A similarity function defined by an explicit table (symmetric closure is
/// applied; unlisted pairs are 0; identical tokens are 1). Lets tests pin
/// exact edge weights, e.g. the paper's Fig. 1 worked example.
class TableSimilarity : public sim::SimilarityFunction {
 public:
  void Set(TokenId a, TokenId b, Score s) {
    table_.push_back({a, b, s});
  }

  Score Similarity(TokenId a, TokenId b) const override {
    if (a == b) return 1.0;
    for (const auto& e : table_) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return e.s;
    }
    return 0.0;
  }

 private:
  struct Entry {
    TokenId a, b;
    Score s;
  };
  std::vector<Entry> table_;
};

/// Brute-force oracle: exact SO of the query against *every* set, sorted
/// non-increasing. Independent code path from the Koios engine (similarity
/// function directly, no stream / cache / filters).
inline std::vector<std::pair<SetId, Score>> OracleRanking(
    const index::SetCollection& sets, std::span<const TokenId> query,
    const sim::SimilarityFunction& sim, Score alpha) {
  std::vector<std::pair<SetId, Score>> ranking;
  for (SetId id = 0; id < sets.size(); ++id) {
    const Score so =
        matching::SemanticOverlap(query, sets.Tokens(id), sim, alpha);
    if (so > 0.0) ranking.emplace_back(id, so);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return ranking;
}

/// θ*k of the oracle ranking (0 when fewer than k positive sets exist).
inline Score OracleKthScore(
    const std::vector<std::pair<SetId, Score>>& ranking, size_t k) {
  if (ranking.empty()) return 0.0;
  const size_t idx = std::min(k, ranking.size()) - 1;
  return ranking[idx].second;
}

/// A ready-to-search random workload: synthetic embeddings + corpus +
/// cosine similarity + exact index.
struct RandomWorkload {
  data::Corpus corpus;
  std::unique_ptr<embedding::SyntheticEmbeddingModel> model;
  std::unique_ptr<sim::CosineEmbeddingSimilarity> sim;
  std::unique_ptr<sim::ExactKnnIndex> index;
};

inline RandomWorkload MakeRandomWorkload(size_t num_sets, size_t vocab,
                                         size_t min_size, size_t max_size,
                                         uint64_t seed,
                                         double coverage = 0.9) {
  RandomWorkload w;
  data::CorpusSpec spec;
  spec.name = "test";
  spec.num_sets = num_sets;
  spec.vocab_size = vocab;
  spec.element_skew = 0.8;
  spec.size_distribution = data::SizeDistribution::kUniform;
  spec.min_set_size = min_size;
  spec.max_set_size = max_size;
  spec.seed = seed;
  w.corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = vocab;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 6.0;
  model_spec.noise_sigma = 0.4;
  model_spec.coverage = coverage;
  model_spec.seed = seed + 1;
  w.model = std::make_unique<embedding::SyntheticEmbeddingModel>(model_spec);
  w.sim = std::make_unique<sim::CosineEmbeddingSimilarity>(&w.model->store());
  w.index = std::make_unique<sim::ExactKnnIndex>(w.corpus.vocabulary,
                                                 w.sim.get());
  return w;
}

}  // namespace koios::testing

#endif  // KOIOS_TESTS_TEST_UTIL_H_
