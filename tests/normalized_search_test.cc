// Tests for top-k search under normalized semantic overlap.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "koios/core/normalized_search.h"
#include "koios/core/searcher.h"
#include "test_util.h"

namespace koios::core {
namespace {

std::vector<TokenId> QueryOf(const testing::RandomWorkload& w, SetId id) {
  const auto span = w.corpus.sets.Tokens(id);
  return {span.begin(), span.end()};
}

std::vector<std::pair<SetId, Score>> NormalizedOracle(
    const testing::RandomWorkload& w, std::span<const TokenId> q, Score alpha) {
  std::vector<std::pair<SetId, Score>> oracle;
  for (SetId id = 0; id < w.corpus.sets.size(); ++id) {
    const Score nso =
        NormalizedOverlap(q, w.corpus.sets.Tokens(id), *w.sim, alpha);
    if (nso > 0) oracle.emplace_back(id, nso);
  }
  std::sort(oracle.begin(), oracle.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return oracle;
}

TEST(NormalizedOverlapTest, RangeAndSelfScore) {
  auto w = testing::MakeRandomWorkload(40, 200, 5, 15, 8001);
  const auto q = QueryOf(w, 2);
  for (SetId id = 0; id < 20; ++id) {
    const Score nso =
        NormalizedOverlap(q, w.corpus.sets.Tokens(id), *w.sim, 0.8);
    EXPECT_GE(nso, 0.0);
    EXPECT_LE(nso, 1.0 + 1e-9);
  }
  // A set scored against itself is a perfect normalized match.
  EXPECT_NEAR(NormalizedOverlap(q, q, *w.sim, 0.8), 1.0, 1e-9);
}

TEST(NormalizedOverlapTest, SmallCompleteMatchOutranksLargePartial) {
  // The ranking change normalization exists for: a 2-element set matched
  // completely beats a 10-element set matched at 3 elements.
  testing::TableSimilarity sim;
  const std::vector<TokenId> q = {0, 1, 2, 3, 4};
  const std::vector<TokenId> small = {0, 1};               // NSO = 2/2 = 1
  std::vector<TokenId> large = {0, 1, 2};                  // overlap 3
  for (TokenId t = 100; t < 107; ++t) large.push_back(t);  // NSO = 3/5
  EXPECT_GT(NormalizedOverlap(q, small, sim, 0.8),
            NormalizedOverlap(q, large, sim, 0.8));
  // Under the absolute measure the order flips.
  EXPECT_LT(matching::SemanticOverlap(q, small, sim, 0.8),
            matching::SemanticOverlap(q, large, sim, 0.8));
}

TEST(NormalizedSearchTest, MatchesOracle) {
  auto w = testing::MakeRandomWorkload(120, 500, 5, 25, 8002);
  NormalizedSearcher searcher(&w.corpus.sets, w.index.get());
  for (SetId qid : {SetId{1}, SetId{40}}) {
    const auto q = QueryOf(w, qid);
    SearchParams params;
    params.k = 8;
    params.alpha = 0.8;
    const auto result = searcher.Search(q, params);
    const auto oracle = NormalizedOracle(w, q, params.alpha);
    const size_t expect = std::min<size_t>(params.k, oracle.size());
    ASSERT_EQ(result.topk.size(), expect) << "q " << qid;
    // The k-th normalized score must agree (ties may permute identities).
    EXPECT_NEAR(result.topk.back().score, oracle[expect - 1].second, 1e-6);
    for (size_t i = 0; i < expect; ++i) {
      const Score truth = NormalizedOverlap(
          q, w.corpus.sets.Tokens(result.topk[i].set), *w.sim, params.alpha);
      EXPECT_NEAR(result.topk[i].score, truth, 1e-6);
      EXPECT_GE(truth + 1e-6, oracle[expect - 1].second);
    }
  }
}

TEST(NormalizedSearchTest, FilterTogglesPreserveExactness) {
  auto w = testing::MakeRandomWorkload(90, 400, 5, 20, 8003);
  NormalizedSearcher searcher(&w.corpus.sets, w.index.get());
  const auto q = QueryOf(w, 6);
  SearchParams with, without;
  with.k = without.k = 6;
  with.alpha = without.alpha = 0.78;
  without.use_iub_filter = false;
  without.use_em_early_termination = false;
  const auto r1 = searcher.Search(q, with);
  const auto r2 = searcher.Search(q, without);
  ASSERT_EQ(r1.topk.size(), r2.topk.size());
  for (size_t i = 0; i < r1.topk.size(); ++i) {
    EXPECT_NEAR(r1.topk[i].score, r2.topk[i].score, 1e-6);
  }
}

TEST(NormalizedSearchTest, RankingDiffersFromAbsoluteSearch) {
  // On a skewed workload the two measures should disagree for some query
  // (this guards against NormalizedSearcher accidentally ranking by SO).
  auto w = testing::MakeRandomWorkload(150, 400, 3, 40, 8004);
  NormalizedSearcher normalized(&w.corpus.sets, w.index.get());
  KoiosSearcher absolute(&w.corpus.sets, w.index.get());
  SearchParams params;
  params.k = 10;
  params.alpha = 0.75;
  bool any_difference = false;
  for (SetId qid : {SetId{0}, SetId{10}, SetId{20}, SetId{30}}) {
    const auto q = QueryOf(w, qid);
    const auto rn = normalized.Search(q, params);
    const auto ra = absolute.Search(q, params);
    std::set<SetId> sn, sa;
    for (const auto& e : rn.topk) sn.insert(e.set);
    for (const auto& e : ra.topk) sa.insert(e.set);
    if (sn != sa) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace koios::core
