// The serve subsystem (ISSUE 4): concurrent QueryEngine execution must be
// bit-identical to serial KoiosSearcher::Search, admission control must
// reject overflow and expired deadlines cleanly, SearchMany must reuse
// prewarmed cursors across the batch, and snapshots must round-trip
// through the repository file format.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "koios/core/searcher.h"
#include "koios/io/serialization.h"
#include "koios/serve/query_engine.h"
#include "koios/serve/snapshot.h"
#include "koios/sim/batched_neighbor_index.h"
#include "koios/util/fault_injector.h"
#include "test_util.h"

namespace koios::serve {
namespace {

using core::KoiosSearcher;
using core::ResultEntry;
using core::SearchParams;
using core::SearchResult;

struct Scenario {
  std::vector<TokenId> query;
  SearchParams params;
};

/// Mixed k/α/|Q| scenarios drawn from stored sets.
std::vector<Scenario> MakeScenarios(const testing::RandomWorkload& w,
                                    size_t count) {
  const size_t ks[] = {1, 5, 10};
  const Score alphas[] = {0.65, 0.8};
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    Scenario s;
    const auto tokens = w.corpus.sets.Tokens(
        static_cast<SetId>((i * 13) % w.corpus.sets.size()));
    s.query.assign(tokens.begin(), tokens.end());
    s.params.k = ks[i % 3];
    s.params.alpha = alphas[i % 2];
    s.params.num_threads = 1;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

void ExpectSameResult(const SearchResult& got, const SearchResult& want,
                      const char* label) {
  ASSERT_EQ(got.topk.size(), want.topk.size()) << label;
  for (size_t i = 0; i < got.topk.size(); ++i) {
    EXPECT_EQ(got.topk[i].set, want.topk[i].set) << label << " entry " << i;
    EXPECT_DOUBLE_EQ(got.topk[i].score, want.topk[i].score)
        << label << " entry " << i;
    EXPECT_EQ(got.topk[i].exact, want.topk[i].exact) << label << " entry " << i;
  }
}

TEST(QueryEngineTest, ConcurrentSubmitsMatchSerialSearchBitForBit) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 11001);
  const auto scenarios = MakeScenarios(w, 24);

  // Serial reference over the same index object: shared cursor payloads
  // are deterministic, so warm-vs-cold cache state cannot change results.
  KoiosSearcher serial(&w.corpus.sets, w.index.get());
  std::vector<SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial.Search(s.query, s.params));
  }

  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);
  std::vector<std::future<QueryEngine::Result>> futures;
  for (const Scenario& s : scenarios) {
    futures.push_back(engine.Submit(s.query, s.params));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryEngine::Result result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameResult(result.value(), reference[i], "scenario");
  }
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.submitted, scenarios.size());
  EXPECT_EQ(counters.completed, scenarios.size());
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  EXPECT_EQ(engine.latency().count(), scenarios.size());
}

TEST(QueryEngineTest, PartitionedEngineMatchesPartitionedSerial) {
  auto w = testing::MakeRandomWorkload(150, 600, 5, 25, 11002);
  const auto scenarios = MakeScenarios(w, 12);

  core::SearcherOptions searcher_options;
  searcher_options.num_partitions = 4;
  KoiosSearcher serial(&w.corpus.sets, w.index.get(), searcher_options);

  EngineOptions options;
  options.num_threads = 3;
  options.searcher = searcher_options;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  std::vector<std::future<QueryEngine::Result>> futures;
  for (const Scenario& s : scenarios) {
    futures.push_back(engine.Submit(s.query, s.params));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryEngine::Result result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const SearchResult want = serial.Search(scenarios[i].query,
                                            scenarios[i].params);
    ExpectSameResult(result.value(), want, "partitioned");
  }
}

TEST(QueryEngineTest, ClosedLoopClientsStayExact) {
  // Multi-threaded submitters (the closed-loop shape of the throughput
  // bench): every client thread loops over its own slice synchronously.
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 11003);
  const auto scenarios = MakeScenarios(w, 24);
  KoiosSearcher serial(&w.corpus.sets, w.index.get());
  std::vector<SearchResult> reference;
  for (const Scenario& s : scenarios) {
    reference.push_back(serial.Search(s.query, s.params));
  }

  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);
  constexpr size_t kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<size_t> mismatches{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < scenarios.size(); i += kClients) {
        QueryEngine::Result r =
            engine.Submit(scenarios[i].query, scenarios[i].params).get();
        if (!r.ok() || r.value().topk.size() != reference[i].topk.size()) {
          ++mismatches;
          continue;
        }
        for (size_t j = 0; j < r.value().topk.size(); ++j) {
          if (r.value().topk[j].set != reference[i].topk[j].set ||
              r.value().topk[j].score != reference[i].topk[j].score) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(QueryEngineTest, QueueOverflowRejectedCleanly) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 20, 11004);
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue = 0;  // nothing may wait: 1 running, rest rejected
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  const auto tokens = w.corpus.sets.Tokens(2);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.7;
  constexpr size_t kBurst = 16;
  std::vector<std::future<QueryEngine::Result>> futures;
  for (size_t i = 0; i < kBurst; ++i) {
    futures.push_back(
        engine.Submit({tokens.begin(), tokens.end()}, params));
  }
  size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    QueryEngine::Result r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status().code(), util::StatusCode::kResourceExhausted)
          << r.status().ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kBurst);
  EXPECT_GE(ok, 1u);  // at least the query that held the worker ran
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.rejected_queue_full, rejected);
  EXPECT_EQ(counters.completed, ok);
}

TEST(QueryEngineTest, ExpiredDeadlineIsCleanlyRejected) {
  auto w = testing::MakeRandomWorkload(100, 400, 5, 20, 11005);
  QueryEngine engine(&w.corpus.sets, w.index.get());
  const auto tokens = w.corpus.sets.Tokens(1);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.7;

  // Deterministic: cancel flag set before the search starts — the
  // reentrant search path must unwind with SearchAborted and no partial
  // state (this is what the engine's deadline handling rides on).
  KoiosSearcher searcher(&w.corpus.sets, w.index.get());
  std::atomic<bool> cancel{true};
  core::SearchContext ctx;
  ctx.set_cancel_flag(&cancel);
  auto session = w.index->NewSession();
  EXPECT_THROW(searcher.Search(tokens, params, session.get(), &ctx),
               core::SearchAborted);

  // And mid-flight: a deadline that expires during execution surfaces as
  // DeadlineExceeded through the engine (loose timing — just assert the
  // status vocabulary, not when exactly it fired).
  QueryEngine::Result late =
      engine
          .Submit({tokens.begin(), tokens.end()}, params,
                  std::chrono::milliseconds(1))
          .get();
  if (!late.ok()) {
    EXPECT_EQ(late.status().code(), util::StatusCode::kDeadlineExceeded);
    EXPECT_GE(engine.counters().deadline_exceeded, 1u);
  }
}

TEST(QueryEngineTest, ColdEngineNeverFailsFastOnEstimatedWait) {
  // Regression (ISSUE 8 satellite): the fail-fast governor estimates a
  // new query's queue wait from the latency EWMA. A COLD engine has no
  // EWMA, so the estimate must be 0 and the fail-fast path must never
  // fire — a daemon's first burst after startup (or after a snapshot
  // swap built a fresh engine) must not be shed on a made-up wait.
  auto w = testing::MakeRandomWorkload(100, 400, 5, 20, 11010);
  EngineOptions options;
  options.num_threads = 1;  // a deep queue forms immediately
  options.max_queue = 64;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);
  EXPECT_DOUBLE_EQ(engine.EstimatedQueueWaitSeconds(), 0.0);

  const auto tokens = w.corpus.sets.Tokens(2);
  SearchParams params;
  params.k = 5;
  params.alpha = 0.7;
  // Every query carries a TIGHT deadline: if the governor hallucinated a
  // wait, these would all be rejected_wait_exceeds_deadline. Cold, they
  // must all be admitted (what happens later — completion or an honest
  // mid-flight deadline — is not this test's concern). The stalled
  // dispatch pins the engine cold for the WHOLE burst: nothing completes,
  // so the EWMA provably stays empty while every submit is judged.
  std::vector<std::future<QueryEngine::Result>> futures;
  {
    util::FaultSpec slow;
    slow.latency = std::chrono::milliseconds(20);
    util::ScopedFault dispatch_fault("threadpool.dispatch", slow);
    for (size_t i = 0; i < 32; ++i) {
      futures.push_back(engine.Submit({tokens.begin(), tokens.end()}, params,
                                      std::chrono::milliseconds(5)));
    }
    EXPECT_DOUBLE_EQ(engine.EstimatedQueueWaitSeconds(), 0.0)
        << "a cold engine has no basis for a wait estimate";
  }
  for (auto& f : futures) f.get();
  const EngineCounters counters = engine.counters();
  EXPECT_EQ(counters.rejected_wait_exceeds_deadline, 0u)
      << "cold engine shed on an estimated wait it cannot have";
  EXPECT_EQ(counters.rejected_queue_full, 0u);
  EXPECT_EQ(counters.submitted, 32u);

  // Warmed up (one clean completion), the estimator comes alive — the
  // /metrics gauges the daemon exposes key off exactly these two.
  QueryEngine::Result warm =
      engine.Submit({tokens.begin(), tokens.end()}, params).get();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GT(engine.LatencyEwmaSeconds(), 0.0);
}

TEST(QueryEngineTest, SearchManyPrewarmsOnceAcrossTheBatch) {
  auto w = testing::MakeRandomWorkload(120, 500, 5, 20, 11006);
  KoiosSearcher serial(&w.corpus.sets, w.index.get());

  // Overlapping queries: shared tokens should be built once, total builds
  // bounded by the distinct (token, α) count of the batch.
  std::vector<std::vector<TokenId>> queries;
  std::vector<TokenId> distinct;
  for (SetId id : {SetId{3}, SetId{3}, SetId{17}, SetId{17}, SetId{42}}) {
    const auto tokens = w.corpus.sets.Tokens(id);
    queries.emplace_back(tokens.begin(), tokens.end());
    distinct.insert(distinct.end(), tokens.begin(), tokens.end());
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  SearchParams params;
  params.k = 5;
  params.alpha = 0.75;

  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);
  auto* cache_owner =
      dynamic_cast<sim::BatchedNeighborIndex*>(w.index.get());
  ASSERT_NE(cache_owner, nullptr);
  const sim::CursorCacheStats before = cache_owner->cursor_cache_stats();

  const std::vector<QueryEngine::Result> results =
      engine.SearchMany(queries, params);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    const SearchResult want = serial.Search(queries[i], params);
    ExpectSameResult(results[i].value(), want, "search_many");
  }

  const sim::CursorCacheStats after = cache_owner->cursor_cache_stats();
  // Every build the batch triggered is one of the distinct tokens, built
  // at most once (duplicate-build races excepted, counted separately).
  EXPECT_LE(after.misses - before.misses,
            distinct.size() + after.duplicate_builds);
  // The queries themselves ran hot: their probes hit the prewarmed cache.
  EXPECT_GT(after.hits, before.hits);
}

/// Saves a workload as a repository file and loads it back as a snapshot.
std::shared_ptr<const Snapshot> SnapshotOf(const testing::RandomWorkload& w,
                                           size_t vocab_size,
                                           const std::string& filename) {
  // The dictionary must cover every embedding row id (the io layer frames
  // one row header per interned token).
  text::Dictionary dict;
  for (size_t t = 0; t < vocab_size; ++t) {
    dict.Intern("tok" + std::to_string(t));
  }
  const std::string path = ::testing::TempDir() + "/" + filename;
  EXPECT_TRUE(
      io::SaveRepository(dict, w.corpus.sets, &w.model->store(), path).ok());
  auto snapshot = Snapshot::Load(path);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  std::remove(path.c_str());
  return snapshot.value();
}

TEST(QueryEngineTest, SwapSnapshotFlipsBetweenQueriesWithoutDraining) {
  // Hot swap (ISSUE 5): queries ADMITTED before the swap complete
  // bit-identically against the old snapshot even when they EXECUTE after
  // it; queries submitted after the swap see the new one; the old
  // snapshot is released once its last query finished.
  auto w1 = testing::MakeRandomWorkload(80, 400, 5, 18, 11008);
  auto w2 = testing::MakeRandomWorkload(90, 450, 5, 18, 11009);
  std::shared_ptr<const Snapshot> snap1 =
      SnapshotOf(w1, 400, "koios_swap_1.bin");
  std::shared_ptr<const Snapshot> snap2 =
      SnapshotOf(w2, 450, "koios_swap_2.bin");

  // Serial references over each snapshot's own serving structures.
  KoiosSearcher ref1(&snap1->sets(), snap1->index());
  KoiosSearcher ref2(&snap2->sets(), snap2->index());

  SearchParams params;
  params.k = 5;
  params.alpha = 0.75;
  const SetId old_sets[] = {3, 11, 40};
  const SetId new_sets[] = {5, 17, 60};

  {
    EngineOptions options;
    options.num_threads = 1;  // one worker: pre-swap submissions queue up
    QueryEngine engine(snap1, options);
    EXPECT_EQ(engine.snapshot(), snap1);

    std::vector<std::vector<TokenId>> old_queries;
    std::vector<std::future<QueryEngine::Result>> old_futures;
    for (const SetId id : old_sets) {
      const auto tokens = snap1->sets().Tokens(id);
      old_queries.emplace_back(tokens.begin(), tokens.end());
      old_futures.push_back(engine.Submit(old_queries.back(), params));
    }
    // Flip while the old queries are (at least partially) still queued.
    engine.SwapSnapshot(snap2);
    EXPECT_EQ(engine.snapshot(), snap2);

    std::vector<std::vector<TokenId>> new_queries;
    std::vector<std::future<QueryEngine::Result>> new_futures;
    for (const SetId id : new_sets) {
      const auto tokens = snap2->sets().Tokens(id);
      new_queries.emplace_back(tokens.begin(), tokens.end());
      new_futures.push_back(engine.Submit(new_queries.back(), params));
    }

    for (size_t i = 0; i < old_futures.size(); ++i) {
      QueryEngine::Result r = old_futures[i].get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const SearchResult want = ref1.Search(old_queries[i], params);
      ExpectSameResult(r.value(), want, "pre-swap query");
    }
    for (size_t i = 0; i < new_futures.size(); ++i) {
      QueryEngine::Result r = new_futures[i].get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      const SearchResult want = ref2.Search(new_queries[i], params);
      ExpectSameResult(r.value(), want, "post-swap query");
    }
    const EngineCounters counters = engine.counters();
    EXPECT_EQ(counters.completed, std::size(old_sets) + std::size(new_sets));
  }
  // Engine destroyed (all queries drained): nothing but this test holds
  // the old snapshot anymore — the swap released it without a drain call.
  EXPECT_EQ(snap1.use_count(), 1);
  EXPECT_EQ(snap2.use_count(), 1);
}

TEST(QueryEngineTest, SwapSnapshotUnderConcurrentLoadStaysExact) {
  // Clients hammer Submit while another thread swaps back and forth; every
  // result must match one of the two snapshots' serial references for the
  // query THAT CLIENT sent (queries are built per snapshot vocabulary, so
  // cross-snapshot execution would be detectable immediately).
  auto w1 = testing::MakeRandomWorkload(80, 400, 5, 18, 11010);
  auto w2 = testing::MakeRandomWorkload(80, 400, 5, 18, 11011);
  std::shared_ptr<const Snapshot> snap1 =
      SnapshotOf(w1, 400, "koios_swapc_1.bin");
  std::shared_ptr<const Snapshot> snap2 =
      SnapshotOf(w2, 400, "koios_swapc_2.bin");
  KoiosSearcher ref1(&snap1->sets(), snap1->index());
  KoiosSearcher ref2(&snap2->sets(), snap2->index());

  SearchParams params;
  params.k = 5;
  params.alpha = 0.7;
  // Both corpora share one vocabulary size, so each query is valid token
  // ids on either snapshot; a result is correct iff it matches the query's
  // serial reference on ONE of the two (admission legally races the
  // swap). All four references are precomputed — the legacy searcher
  // interface is single-consumer and must not be hit from client threads.
  const auto q1 = snap1->sets().Tokens(7);
  const auto q2 = snap2->sets().Tokens(7);
  const SearchResult want_q1_on1 = ref1.Search(q1, params);
  const SearchResult want_q1_on2 = ref2.Search(q1, params);
  const SearchResult want_q2_on1 = ref1.Search(q2, params);
  const SearchResult want_q2_on2 = ref2.Search(q2, params);

  EngineOptions options;
  options.num_threads = 3;
  QueryEngine engine(snap1, options);
  std::atomic<size_t> mismatches{0};
  std::atomic<bool> stop{false};
  constexpr size_t kClients = 3;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (size_t i = 0; i < 20; ++i) {
        const bool first = i % 2 == 0;
        QueryEngine::Result r =
            engine.Submit(first ? std::vector<TokenId>(q1.begin(), q1.end())
                                : std::vector<TokenId>(q2.begin(), q2.end()),
                          params)
                .get();
        if (!r.ok()) {
          ++mismatches;
          continue;
        }
        const SearchResult& a = first ? want_q1_on1 : want_q2_on1;
        const SearchResult& b = first ? want_q1_on2 : want_q2_on2;
        const auto same = [](const SearchResult& got, const SearchResult& w) {
          if (got.topk.size() != w.topk.size()) return false;
          for (size_t j = 0; j < got.topk.size(); ++j) {
            if (got.topk[j].set != w.topk[j].set ||
                got.topk[j].score != w.topk[j].score) {
              return false;
            }
          }
          return true;
        };
        if (!same(r.value(), a) && !same(r.value(), b)) ++mismatches;
      }
    });
  }
  std::thread swapper([&] {
    bool to_second = true;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.SwapSnapshot(to_second ? snap2 : snap1);
      to_second = !to_second;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(QueryEngineTest, SearchManyDeadlineCoversThePrewarm) {
  // ISSUE 5 satellite: the batch ticket must exist BEFORE the prewarm so a
  // stalled prewarm surfaces as clean DeadlineExceeded rejections instead
  // of silently delaying every query with the deadline clock not started.
  // A 1 ms deadline against a prewarm that costs tens of milliseconds is
  // deterministic: under the OLD order every query would still run (each
  // got a fresh 1 ms after the prewarm finished); under the new order the
  // batch comes back rejected, and the prewarm itself was cut short at a
  // poll boundary.
  auto w = testing::MakeRandomWorkload(60, 8000, 30, 60, 11012);
  EngineOptions options;
  options.num_threads = 2;
  options.default_deadline = std::chrono::milliseconds(1);
  QueryEngine engine(&w.corpus.sets, w.index.get(), options);

  std::vector<std::vector<TokenId>> queries;
  std::vector<TokenId> distinct;
  for (SetId id = 0; id < 20; ++id) {
    const auto tokens = w.corpus.sets.Tokens(id);
    queries.emplace_back(tokens.begin(), tokens.end());
    distinct.insert(distinct.end(), tokens.begin(), tokens.end());
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  ASSERT_GT(distinct.size(), 400u);  // enough prewarm work to blow 1 ms

  SearchParams params;
  params.k = 5;
  params.alpha = 0.75;
  const std::vector<QueryEngine::Result> results =
      engine.SearchMany(queries, params);
  ASSERT_EQ(results.size(), queries.size());
  size_t rejected = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded)
          << r.status().ToString();
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, queries.size())
      << "the batch deadline did not cover the prewarm";
  EXPECT_EQ(engine.counters().deadline_exceeded, rejected);
  // The prewarm was cut short at a deadline poll: far fewer cursor builds
  // than the batch's distinct token count.
  auto* cache_owner = dynamic_cast<sim::BatchedNeighborIndex*>(w.index.get());
  ASSERT_NE(cache_owner, nullptr);
  EXPECT_LT(cache_owner->cursor_cache_stats().misses, distinct.size());
}

TEST(QueryEngineTest, SnapshotRoundTripServesIdentically) {
  auto w = testing::MakeRandomWorkload(80, 400, 5, 18, 11007);
  text::Dictionary dict;
  for (TokenId t = 0; t < 400; ++t) dict.Intern("tok" + std::to_string(t));
  const std::string path = ::testing::TempDir() + "/koios_serve_snapshot.bin";
  ASSERT_TRUE(
      io::SaveRepository(dict, w.corpus.sets, &w.model->store(), path).ok());

  auto snapshot = Snapshot::Load(path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot.value()->sets().size(), w.corpus.sets.size());

  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(snapshot.value(), options);
  KoiosSearcher original(&w.corpus.sets, w.index.get());

  SearchParams params;
  params.k = 5;
  params.alpha = 0.8;
  for (SetId id : {SetId{3}, SetId{40}}) {
    const auto tokens = w.corpus.sets.Tokens(id);
    QueryEngine::Result r =
        engine.Submit({tokens.begin(), tokens.end()}, params).get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const SearchResult want = original.Search(tokens, params);
    ASSERT_EQ(r.value().topk.size(), want.topk.size());
    for (size_t i = 0; i < want.topk.size(); ++i) {
      EXPECT_EQ(r.value().topk[i].set, want.topk[i].set);
      EXPECT_NEAR(r.value().topk[i].score, want.topk[i].score, 1e-9);
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsRepositoryWithoutEmbeddings) {
  text::Dictionary dict;
  dict.Intern("a");
  index::SetCollection sets;
  sets.AddSet(std::vector<TokenId>{0});
  const std::string path = ::testing::TempDir() + "/koios_serve_noemb.bin";
  ASSERT_TRUE(io::SaveRepository(dict, sets, nullptr, path).ok());
  auto snapshot = Snapshot::Load(path);
  EXPECT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), util::StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios::serve
