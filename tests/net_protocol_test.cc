// Wire protocol of koios_serverd (ISSUE 8): binary frames must round-trip
// exactly, the incremental parsers must be byte-at-a-time safe (kNeedMore
// on every prefix), oversize must be rejected FROM THE HEADER before the
// body is buffered, malformed frames must be clean kErrors, the wire-code
// mapping must stay frozen, retry hints must survive the wire, and the
// strict JSON dialect must reject what it does not understand.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "koios/net/protocol.h"

namespace koios::net {
namespace {

using core::ResultEntry;

RequestFrame MakeSearchMany() {
  RequestFrame frame;
  frame.op = Op::kSearchMany;
  frame.k = 5;
  frame.alpha = 0.75;
  frame.deadline_ms = 250;
  frame.queries = {{1, 2, 3}, {9}, {4, 4, 7, 1000000}};
  return frame;
}

TEST(NetProtocolTest, RequestFrameRoundTripsExactly) {
  const RequestFrame in = MakeSearchMany();
  std::string wire;
  AppendRequestFrame(in, &wire);

  RequestFrame out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseRequestFrame(wire.data(), wire.size(), 1 << 20, &consumed,
                              &out, &error),
            ParseStatus::kOk)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.op, in.op);
  EXPECT_EQ(out.k, in.k);
  EXPECT_DOUBLE_EQ(out.alpha, in.alpha);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.queries, in.queries);
}

TEST(NetProtocolTest, EveryPrefixIsNeedMoreNeverError) {
  // Byte-at-a-time safety: a parser that mis-handles a short read would
  // close perfectly healthy slow connections.
  std::string wire;
  AppendRequestFrame(MakeSearchMany(), &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    RequestFrame out;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseRequestFrame(wire.data(), len, 1 << 20, &consumed, &out,
                                &error),
              ParseStatus::kNeedMore)
        << "prefix of " << len << " bytes: " << error;
  }
}

TEST(NetProtocolTest, PipelinedFramesParseOneAtATime) {
  std::string wire;
  AppendRequestFrame(MakeSearchMany(), &wire);
  const size_t first = wire.size();
  RequestFrame ping;
  ping.op = Op::kPing;
  ping.queries.clear();
  AppendRequestFrame(ping, &wire);

  RequestFrame out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseRequestFrame(wire.data(), wire.size(), 1 << 20, &consumed,
                              &out, &error),
            ParseStatus::kOk);
  EXPECT_EQ(consumed, first);  // exactly one frame consumed
  EXPECT_EQ(out.op, Op::kSearchMany);
  ASSERT_EQ(ParseRequestFrame(wire.data() + consumed, wire.size() - consumed,
                              1 << 20, &consumed, &out, &error),
            ParseStatus::kOk);
  EXPECT_EQ(out.op, Op::kPing);
}

TEST(NetProtocolTest, OversizeIsRejectedFromTheHeaderAlone) {
  // Header declaring a 2 MiB body against a 1 MiB cap: kError with only
  // the 6 header bytes in the buffer — the defense must not wait for (or
  // buffer) a body the peer could feed forever.
  char header[kFrameHeaderBytes];
  header[0] = static_cast<char>(kFrameMagic);
  header[1] = static_cast<char>(Op::kSearch);
  const uint32_t body_len = 2u << 20;
  std::memcpy(header + 2, &body_len, sizeof body_len);

  RequestFrame out;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(ParseRequestFrame(header, sizeof header, 1 << 20, &consumed, &out,
                              &error),
            ParseStatus::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
}

TEST(NetProtocolTest, MalformedFramesAreCleanErrors) {
  auto expect_error = [](std::string wire, const char* label) {
    RequestFrame out;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseRequestFrame(wire.data(), wire.size(), 1 << 20, &consumed,
                                &out, &error),
              ParseStatus::kError)
        << label;
    EXPECT_FALSE(error.empty()) << label;
  };

  std::string good;
  AppendRequestFrame(MakeSearchMany(), &good);

  std::string bad_magic = good;
  bad_magic[0] = 0x7f;
  expect_error(bad_magic, "bad magic");

  std::string bad_op = good;
  bad_op[1] = 99;
  expect_error(bad_op, "unknown op");

  std::string padded = good;  // body_len covers 4 junk bytes past the queries
  padded[2] = static_cast<char>(padded[2] + 4);
  padded.append(4, '\0');
  expect_error(padded, "trailing bytes in frame body");

  RequestFrame zero_k = MakeSearchMany();
  zero_k.k = 0;
  std::string zero_k_wire;
  AppendRequestFrame(zero_k, &zero_k_wire);
  expect_error(zero_k_wire, "k == 0");

  RequestFrame bad_alpha = MakeSearchMany();
  bad_alpha.alpha = 1.5;
  std::string bad_alpha_wire;
  AppendRequestFrame(bad_alpha, &bad_alpha_wire);
  expect_error(bad_alpha_wire, "alpha out of (0,1]");

  RequestFrame empty = MakeSearchMany();
  empty.queries = {{}};
  std::string empty_wire;
  AppendRequestFrame(empty, &empty_wire);
  expect_error(empty_wire, "empty query");
}

TEST(NetProtocolTest, OkResponseRoundTripsResultsExactly) {
  std::vector<ResultEntry> topk = {{4, 0.918273645546372819, true},
                                   {17, 0.5, false},
                                   {0, 1e-12, true}};
  std::string wire;
  AppendOkResponse(3, topk, &wire);

  ResponseFrame out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseResponseFrame(wire.data(), wire.size(), 16 << 20, &consumed,
                               &out, &error),
            ParseStatus::kOk)
      << error;
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.code, WireCode::kOk);
  EXPECT_EQ(out.query_index, 3u);
  ASSERT_EQ(out.results.size(), topk.size());
  for (size_t i = 0; i < topk.size(); ++i) {
    EXPECT_EQ(out.results[i].set, topk[i].set);
    // Bit-exact: the chaos bench compares network results to the serial
    // reference with ==; the wire must not round doubles.
    EXPECT_EQ(out.results[i].score, topk[i].score);
    EXPECT_EQ(out.results[i].exact, topk[i].exact);
  }
}

TEST(NetProtocolTest, ErrorResponseCarriesRetryHintAcrossTheWire) {
  const util::Status shed =
      util::Status::ResourceExhausted("queue full").WithRetryAfterMs(37);
  std::string wire;
  AppendErrorResponse(2, shed, &wire);

  ResponseFrame out;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseResponseFrame(wire.data(), wire.size(), 16 << 20, &consumed,
                               &out, &error),
            ParseStatus::kOk);
  EXPECT_EQ(out.code, WireCode::kResourceExhausted);
  EXPECT_EQ(out.query_index, 2u);
  EXPECT_EQ(out.retry_after_ms, 37u);

  const util::Status back = ResponseToStatus(out);
  EXPECT_EQ(back.code(), util::StatusCode::kResourceExhausted);
  ASSERT_TRUE(back.has_retry_after());
  EXPECT_EQ(back.retry_after_ms(), 37);
  EXPECT_NE(back.message().find("queue full"), std::string::npos);
}

TEST(NetProtocolTest, WireCodeMappingIsFrozen) {
  // These numeric values are the protocol contract; reordering the C++
  // enums must never change them.
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kOk), 0);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kInvalidArgument), 1);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kNotFound), 2);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kResourceExhausted), 3);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kDeadlineExceeded), 4);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kUnavailable), 5);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kCancelled), 6);
  EXPECT_EQ(static_cast<uint8_t>(WireCode::kInternal), 7);

  // Round-trip every code the engine can emit.
  for (const util::StatusCode code :
       {util::StatusCode::kOk, util::StatusCode::kInvalidArgument,
        util::StatusCode::kNotFound, util::StatusCode::kResourceExhausted,
        util::StatusCode::kDeadlineExceeded, util::StatusCode::kUnavailable,
        util::StatusCode::kCancelled, util::StatusCode::kInternal}) {
    EXPECT_EQ(FromWireCode(ToWireCode(code)), code);
  }
}

TEST(NetProtocolTest, JsonRequestParsesAndDefaultsApply) {
  JsonRequest req;
  ASSERT_TRUE(ParseJsonRequestLine(
                  R"({"tokens":[3,1,4],"k":7,"alpha":0.6,"deadline_ms":99})",
                  &req)
                  .ok());
  EXPECT_EQ(req.tokens, (std::vector<TokenId>{3, 1, 4}));
  EXPECT_EQ(req.k, 7u);
  EXPECT_DOUBLE_EQ(req.alpha, 0.6);
  EXPECT_EQ(req.deadline_ms, 99u);

  JsonRequest defaults;
  ASSERT_TRUE(ParseJsonRequestLine(R"({"tokens":[5]})", &defaults).ok());
  EXPECT_EQ(defaults.k, 10u);
  EXPECT_DOUBLE_EQ(defaults.alpha, 0.8);
  EXPECT_EQ(defaults.deadline_ms, 0u);
}

TEST(NetProtocolTest, JsonParserIsStrict) {
  JsonRequest req;
  // A typo'd key must fail loud, not silently fall back to a default.
  EXPECT_FALSE(
      ParseJsonRequestLine(R"({"tokens":[1],"aplha":0.5})", &req).ok());
  EXPECT_FALSE(ParseJsonRequestLine(R"({"k":10})", &req).ok());  // no tokens
  EXPECT_FALSE(ParseJsonRequestLine(R"({"tokens":[]})", &req).ok());
  EXPECT_FALSE(ParseJsonRequestLine(R"({"tokens":[1]} extra)", &req).ok());
  EXPECT_FALSE(ParseJsonRequestLine("not json", &req).ok());
  EXPECT_FALSE(ParseJsonRequestLine(R"({"tokens":[-1]})", &req).ok());
}

TEST(NetProtocolTest, JsonResponsesAreWellFormed) {
  const std::string ok = JsonOkResponse({{4, 0.5, true}, {9, 0.25, false}});
  EXPECT_NE(ok.find("\"status\":\"ok\""), std::string::npos) << ok;
  EXPECT_NE(ok.find("\"set\":4"), std::string::npos);
  EXPECT_NE(ok.find("\"exact\":true"), std::string::npos);
  EXPECT_NE(ok.find("\"exact\":false"), std::string::npos);

  const std::string err = JsonErrorResponse(
      util::Status::Unavailable("draining").WithRetryAfterMs(12));
  EXPECT_NE(err.find("\"status\":\"unavailable\""), std::string::npos) << err;
  EXPECT_NE(err.find("\"retry_after_ms\":12"), std::string::npos);
  EXPECT_NE(err.find("draining"), std::string::npos);
}

}  // namespace
}  // namespace koios::net
