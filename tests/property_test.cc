// Parameterized property sweeps over the foundational data structures:
// randomized differential tests against straightforward oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "koios/matching/greedy.h"
#include "koios/matching/hungarian.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/sim/token_stream.h"
#include "koios/util/rng.h"
#include "koios/util/top_k_list.h"
#include "koios/util/zipf.h"
#include "test_util.h"

namespace koios {
namespace {

// ---------------------------------------------------- TopKList vs oracle --

class TopKListPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKListPropertyTest, MatchesSortOracleUnderRandomOps) {
  const size_t k = GetParam();
  util::Rng rng(1000 + k);
  util::TopKList<int> list(k);
  std::map<int, double> live;  // id -> score
  for (int step = 0; step < 2000; ++step) {
    const int id = static_cast<int>(rng.NextBounded(200));
    if (rng.NextBool(0.15) && !live.empty()) {
      // Remove a random live id (if it is in the list).
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      list.Remove(it->first);
      live.erase(it);
    } else {
      // Offer: emulate monotone score growth per id (LB semantics).
      double score = rng.NextDouble() * 10.0;
      auto it = live.find(id);
      if (it != live.end()) score = std::max(score, it->second + 0.1);
      // Mirror the structure's own acceptance rule: entries already in the
      // list are always updated; new entries only enter if they beat the
      // bottom of a full list.
      if (list.Offer(id, score)) live[id] = score;
    }
    // Oracle check: the list holds the k largest live scores it accepted.
    if (step % 100 == 99 && list.Full()) {
      std::vector<double> scores;
      for (const auto& [lid, s] : live) {
        if (list.Contains(lid)) scores.push_back(s);
      }
      ASSERT_EQ(scores.size(), std::min(k, live.size()));
      std::sort(scores.begin(), scores.end());
      EXPECT_DOUBLE_EQ(list.Bottom(), scores.front());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TopKListPropertyTest,
                         ::testing::Values<size_t>(1, 2, 5, 17, 64));

// -------------------------------------------------------- Zipf CDF sweep --

class ZipfPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPropertyTest, EmpiricalMassMatchesPmf) {
  const double s = GetParam();
  const uint64_t n = 50;
  util::Rng rng(static_cast<uint64_t>(s * 1000) + 3);
  util::ZipfDistribution dist(n, s);
  std::vector<double> counts(n, 0.0);
  const int samples = 60000;
  for (int i = 0; i < samples; ++i) counts[dist.Sample(&rng)] += 1.0;
  // Expected pmf.
  double norm = 0.0;
  for (uint64_t r = 1; r <= n; ++r) norm += std::pow(static_cast<double>(r), -s);
  for (uint64_t r = 1; r <= 5; ++r) {  // check the head, where mass is
    const double expected = std::pow(static_cast<double>(r), -s) / norm;
    const double got = counts[r - 1] / samples;
    EXPECT_NEAR(got, expected, 0.015 + expected * 0.1)
        << "rank " << r << " skew " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfPropertyTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 2.0));

// ---------------------------------------- matching invariants by density --

class MatchingDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(MatchingDensityTest, HungarianDominatesGreedyWithinFactorTwo) {
  const double density = GetParam();
  util::Rng rng(static_cast<uint64_t>(density * 100) + 7);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t rows = 1 + rng.NextBounded(8);
    const size_t cols = 1 + rng.NextBounded(8);
    matching::WeightMatrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        if (rng.NextBool(density)) m.At(i, j) = 0.5 + 0.5 * rng.NextDouble();
      }
    }
    const double exact = matching::HungarianMatcher::Solve(m).score;
    const double greedy = matching::GreedyMatch(m).score;
    EXPECT_LE(greedy, exact + 1e-9);
    EXPECT_GE(greedy + 1e-9, exact / 2.0);
    // Matching is bounded by its smaller side.
    EXPECT_LE(exact, static_cast<double>(std::min(rows, cols)) + 1e-9);
  }
}

TEST_P(MatchingDensityTest, MatchingIsAValidAssignment) {
  const double density = GetParam();
  util::Rng rng(static_cast<uint64_t>(density * 100) + 11);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t rows = 1 + rng.NextBounded(6);
    const size_t cols = 1 + rng.NextBounded(6);
    matching::WeightMatrix m(rows, cols);
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        if (rng.NextBool(density)) m.At(i, j) = rng.NextDouble();
      }
    }
    const auto result = matching::HungarianMatcher::Solve(m);
    std::vector<char> col_used(cols, 0);
    double recomputed = 0.0;
    for (size_t r = 0; r < rows; ++r) {
      const int32_t c = result.match_of_row[r];
      if (c < 0) continue;
      ASSERT_LT(static_cast<size_t>(c), cols);
      EXPECT_FALSE(col_used[c]) << "column matched twice";
      col_used[c] = 1;
      recomputed += m.At(r, static_cast<size_t>(c));
    }
    EXPECT_NEAR(recomputed, result.score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, MatchingDensityTest,
                         ::testing::Values(0.1, 0.3, 0.6, 0.9, 1.0));

// ------------------------------------- token stream equivalence by alpha --

class StreamAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(StreamAlphaTest, StreamEqualsSortedPairEnumeration) {
  const double alpha = GetParam();
  auto w = testing::MakeRandomWorkload(30, 250, 5, 15, 2024);
  const auto qs = w.corpus.sets.Tokens(0);
  std::vector<TokenId> q(qs.begin(), qs.end());
  sim::TokenStream stream(q, w.index.get(), alpha, [&](TokenId t) {
    return std::binary_search(w.corpus.vocabulary.begin(),
                              w.corpus.vocabulary.end(), t);
  });
  std::vector<double> stream_sims;
  while (auto tuple = stream.Next()) stream_sims.push_back(tuple->sim);

  // Oracle: enumerate all pairs, self-matches at 1.0, sort descending.
  std::vector<double> oracle_sims;
  for (uint32_t qi = 0; qi < q.size(); ++qi) {
    for (TokenId t : w.corpus.vocabulary) {
      const double s = t == q[qi] ? 1.0 : w.sim->Similarity(q[qi], t);
      if (s >= alpha) oracle_sims.push_back(s);
    }
  }
  std::sort(oracle_sims.rbegin(), oracle_sims.rend());
  ASSERT_EQ(stream_sims.size(), oracle_sims.size()) << "alpha " << alpha;
  for (size_t i = 0; i < stream_sims.size(); ++i) {
    EXPECT_NEAR(stream_sims[i], oracle_sims[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, StreamAlphaTest,
                         ::testing::Values(0.55, 0.7, 0.85, 0.95));

}  // namespace
}  // namespace koios
