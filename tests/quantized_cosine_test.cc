// Tests for the int8 quantized embedding tier (ISSUE 2): the fused
// dequant-dot kernel's error bound, exactness preservation at
// Precision::kFloat64, batch/pairwise self-consistency, and tier
// lifecycle (Finalize idempotence, invalidation by Add).
//
// Error-bound rationale: codes are affine with per-row scale
// s = (max - min) / 254 and normalized rows have max - min <= 2, so each
// reconstructed element is off by at most s/2 <= 1/254, and a dim-d dot
// of unit vectors accumulates at most (|a|_1 + |b|_1) / 254 <= 2*sqrt(d)/254
// absolute error — ~0.14 for d = 300 in the worst case, empirically ~100×
// smaller because quantization errors have random signs. The documented
// bound asserted here (0.05) sits between the two.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/sim/cosine_similarity.h"
#include "koios/sim/exact_knn_index.h"
#include "koios/util/rng.h"

namespace koios::embedding {
namespace {

constexpr double kDocumentedAbsErrorBound = 0.05;  // see docs/BENCHMARKS.md

SyntheticModelSpec QuantSpec() {
  SyntheticModelSpec spec;
  spec.vocab_size = 500;
  spec.dim = 96;
  spec.avg_cluster_size = 12.0;
  spec.noise_sigma = 0.4;
  spec.coverage = 0.9;  // keep OOV tokens so the kNoRow paths run
  spec.seed = 2024;
  return spec;
}

std::vector<TokenId> FullVocabulary(size_t n) {
  std::vector<TokenId> vocab(n);
  for (TokenId t = 0; t < n; ++t) vocab[t] = t;
  return vocab;
}

TEST(QuantizedCosineTest, Float64PrecisionBitIdenticalBeforeAndAfterFinalize) {
  SyntheticEmbeddingModel model(QuantSpec());
  auto& store = model.mutable_store();
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  std::vector<double> before(vocab.size());
  std::vector<double> after(vocab.size());
  store.CosineBatch(3, vocab, std::span<double>(before),
                    Precision::kFloat64);
  store.Finalize();
  ASSERT_TRUE(store.quantized());
  store.CosineBatch(3, vocab, std::span<double>(after), Precision::kFloat64);
  for (size_t i = 0; i < vocab.size(); ++i) {
    // kFloat64 must route to the exact float-row kernel regardless of the
    // quantized tier's existence.
    EXPECT_DOUBLE_EQ(before[i], after[i]) << "t=" << vocab[i];
  }
}

TEST(QuantizedCosineTest, Int8ErrorWithinDocumentedBound) {
  SyntheticEmbeddingModel model(QuantSpec());
  auto& store = model.mutable_store();
  store.Finalize();
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  std::vector<double> exact(vocab.size());
  std::vector<double> quant(vocab.size());
  double max_err = 0.0;
  util::Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const TokenId q =
        static_cast<TokenId>(rng.NextBounded(model.spec().vocab_size));
    store.CosineBatch(q, vocab, std::span<double>(exact),
                      Precision::kFloat64);
    store.CosineBatch(q, vocab, std::span<double>(quant), Precision::kInt8);
    for (size_t i = 0; i < vocab.size(); ++i) {
      // OOV rows must be 0 in both tiers; covered rows within the bound.
      if (!store.Has(q) || !store.Has(vocab[i])) {
        EXPECT_DOUBLE_EQ(quant[i], 0.0);
        continue;
      }
      max_err = std::max(max_err, std::abs(quant[i] - exact[i]));
    }
  }
  EXPECT_LE(max_err, kDocumentedAbsErrorBound);
}

TEST(QuantizedCosineTest, BatchedInt8MatchesScalarCosineQuantized) {
  SyntheticEmbeddingModel model(QuantSpec());
  auto& store = model.mutable_store();
  store.Finalize();
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  std::vector<double> batch(vocab.size());
  std::vector<double> multi(2 * vocab.size());
  const std::vector<TokenId> queries = {7, 123};
  store.CosineMultiBatch(queries, vocab, std::span<double>(multi),
                         Precision::kInt8);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const TokenId q = queries[qi];
    store.CosineBatch(q, vocab, std::span<double>(batch), Precision::kInt8);
    for (size_t i = 0; i < vocab.size(); ++i) {
      const double reference = store.Has(q) && store.Has(vocab[i])
                                   ? store.CosineQuantized(q, vocab[i])
                                   : 0.0;
      // Integer dot + fixed fused formula: all three paths bit-identical.
      EXPECT_DOUBLE_EQ(batch[i], reference) << "q=" << q << " t=" << vocab[i];
      EXPECT_DOUBLE_EQ(multi[qi * vocab.size() + i], reference)
          << "q=" << q << " t=" << vocab[i];
    }
  }
}

TEST(QuantizedCosineTest, Int8FallsBackToFloatWhenNotFinalized) {
  SyntheticEmbeddingModel model(QuantSpec());
  const auto& store = model.store();
  ASSERT_FALSE(store.quantized());
  const auto vocab = FullVocabulary(model.spec().vocab_size);
  std::vector<double> exact(vocab.size());
  std::vector<double> quant(vocab.size());
  store.CosineBatch(9, vocab, std::span<double>(exact), Precision::kFloat64);
  store.CosineBatch(9, vocab, std::span<double>(quant), Precision::kInt8);
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_DOUBLE_EQ(quant[i], exact[i]);
  }
}

TEST(QuantizedCosineTest, AddAfterFinalizeDropsTierAndRefinalizeRestoresIt) {
  EmbeddingStore store(8);
  util::Rng rng(77);
  std::vector<float> v(8);
  for (TokenId t = 0; t < 20; ++t) {
    for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
    store.Add(t, v);
  }
  store.Finalize();
  EXPECT_TRUE(store.quantized());
  store.Finalize();  // idempotent
  EXPECT_TRUE(store.quantized());
  EXPECT_GT(store.QuantizedMemoryUsageBytes(), 0u);

  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  store.Add(20, v);
  EXPECT_FALSE(store.quantized());  // tier no longer covers every row

  store.Finalize();
  EXPECT_TRUE(store.quantized());
  // The re-finalized tier covers the new row.
  EXPECT_NEAR(store.CosineQuantized(20, 20), 1.0, kDocumentedAbsErrorBound);
}

TEST(QuantizedCosineTest, ConstantRowQuantizesExactly) {
  // A constant row has hi == lo: scale 0, all-zero codes, value carried by
  // the offset — the fused formula must reproduce its dot products.
  EmbeddingStore store(16);
  std::vector<float> ones(16, 1.0f);
  std::vector<float> mixed(16);
  for (size_t i = 0; i < 16; ++i) mixed[i] = i % 2 == 0 ? 1.0f : -1.0f;
  store.Add(0, ones);
  store.Add(1, mixed);
  store.Finalize();
  EXPECT_NEAR(store.CosineQuantized(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(store.CosineQuantized(0, 1), store.Cosine(0, 1), 1e-6);
}

TEST(QuantizedCosineSimilarityTest, Int8SimilarityIsSelfConsistentAcrossPaths) {
  SyntheticEmbeddingModel model(QuantSpec());
  model.mutable_store().Finalize();
  sim::CosineEmbeddingSimilarity quant_sim(&model.store(), Precision::kInt8);
  const auto vocab = FullVocabulary(model.spec().vocab_size);

  std::vector<Score> batch(vocab.size());
  util::Rng rng(31);
  for (int rep = 0; rep < 6; ++rep) {
    const TokenId q =
        static_cast<TokenId>(rng.NextBounded(model.spec().vocab_size));
    quant_sim.SimilarityBatch(q, vocab, std::span<Score>(batch));
    for (size_t i = 0; i < vocab.size(); ++i) {
      // Pairwise and batched kInt8 read the same tier → identical values,
      // same clamping, sim(x, x) = 1.
      EXPECT_DOUBLE_EQ(batch[i], quant_sim.Similarity(q, vocab[i]))
          << "q=" << q << " t=" << vocab[i];
      EXPECT_GE(batch[i], 0.0);
      EXPECT_LE(batch[i], 1.0);
    }
  }
}

TEST(QuantizedCosineSimilarityTest, Int8KnnStreamStaysCloseToExact) {
  // End-to-end: an exact-scan index over the kInt8 similarity must stream
  // neighbors whose similarities match the float index within the bound —
  // the index-level view of the quantization error.
  SyntheticEmbeddingModel model(QuantSpec());
  model.mutable_store().Finalize();
  sim::CosineEmbeddingSimilarity exact_sim(&model.store());
  sim::CosineEmbeddingSimilarity quant_sim(&model.store(), Precision::kInt8);
  const auto vocab = FullVocabulary(model.spec().vocab_size);
  sim::ExactKnnIndex exact_index(vocab, &exact_sim);
  sim::ExactKnnIndex quant_index(vocab, &quant_sim);

  const Score alpha = 0.5;
  size_t compared = 0;
  for (TokenId q : {TokenId{2}, TokenId{77}, TokenId{310}}) {
    while (true) {
      const auto qn = quant_index.NextNeighbor(q, alpha);
      if (!qn.has_value()) break;
      // The quantized stream's scores must be within the bound of the true
      // similarity of that pair (membership near α may legitimately
      // differ, so compare scores pairwise, not stream-vs-stream).
      EXPECT_NEAR(qn->sim, exact_sim.Similarity(q, qn->token),
                  kDocumentedAbsErrorBound);
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u);
}

}  // namespace
}  // namespace koios::embedding
