#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "koios/sim/exact_knn_index.h"
#include "koios/sim/lsh_index.h"
#include "koios/sim/token_stream.h"
#include "test_util.h"

namespace koios::sim {
namespace {

// --------------------------------------------------------- ExactKnnIndex --

TEST(ExactKnnIndexTest, ReturnsNeighborsDescending) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.9);
  sim.Set(0, 2, 0.95);
  sim.Set(0, 3, 0.85);
  ExactKnnIndex index({1, 2, 3, 4}, &sim);
  auto n1 = index.NextNeighbor(0, 0.8);
  auto n2 = index.NextNeighbor(0, 0.8);
  auto n3 = index.NextNeighbor(0, 0.8);
  auto n4 = index.NextNeighbor(0, 0.8);
  ASSERT_TRUE(n1 && n2 && n3);
  EXPECT_EQ(n1->token, 2u);
  EXPECT_EQ(n2->token, 1u);
  EXPECT_EQ(n3->token, 3u);
  EXPECT_FALSE(n4.has_value());  // token 4 below alpha
}

TEST(ExactKnnIndexTest, RespectsAlphaCutoff) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.79);
  ExactKnnIndex index({1}, &sim);
  EXPECT_FALSE(index.NextNeighbor(0, 0.8).has_value());
  index.ResetCursors();
  EXPECT_TRUE(index.NextNeighbor(0, 0.5).has_value());
}

TEST(ExactKnnIndexTest, NeverReturnsQueryItself) {
  testing::TableSimilarity sim;
  ExactKnnIndex index({0, 1}, &sim);
  auto n = index.NextNeighbor(0, 0.5);
  EXPECT_FALSE(n.has_value());  // only potential match is self
}

TEST(ExactKnnIndexTest, ResetCursorsRestartsStreams) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.9);
  ExactKnnIndex index({1}, &sim);
  EXPECT_TRUE(index.NextNeighbor(0, 0.8).has_value());
  EXPECT_FALSE(index.NextNeighbor(0, 0.8).has_value());
  index.ResetCursors();
  EXPECT_TRUE(index.NextNeighbor(0, 0.8).has_value());
}

// ------------------------------------------------------------ TokenStream --

TEST(TokenStreamTest, EmitsSelfMatchesFirst) {
  testing::TableSimilarity sim;
  sim.Set(0, 5, 0.9);
  ExactKnnIndex index({0, 1, 5}, &sim);
  TokenStream stream({0, 1}, &index, 0.8, [](TokenId) { return true; });
  auto t1 = stream.Next();
  auto t2 = stream.Next();
  ASSERT_TRUE(t1 && t2);
  EXPECT_DOUBLE_EQ(t1->sim, 1.0);
  EXPECT_DOUBLE_EQ(t2->sim, 1.0);
  EXPECT_EQ(t1->query_token, t1->token);
  EXPECT_EQ(t2->query_token, t2->token);
}

TEST(TokenStreamTest, NonIncreasingSimilarityOrder) {
  auto w = testing::MakeRandomWorkload(50, 300, 5, 20, 77);
  const auto query_span = w.corpus.sets.Tokens(0);
  std::vector<TokenId> query(query_span.begin(), query_span.end());
  TokenStream stream(query, w.index.get(), 0.7,
                     [](TokenId) { return true; });
  Score prev = 1.0;
  size_t count = 0;
  while (auto t = stream.Next()) {
    EXPECT_LE(t->sim, prev + 1e-12);
    EXPECT_GE(t->sim, 0.7);
    prev = t->sim;
    ++count;
  }
  EXPECT_GE(count, query.size());  // at least the self matches
}

TEST(TokenStreamTest, SkipsSelfMatchForOutOfVocabularyTokens) {
  testing::TableSimilarity sim;
  ExactKnnIndex index({1, 2}, &sim);
  // Token 99 not in vocabulary: no self-match, no neighbors.
  TokenStream stream({99}, &index, 0.8, [](TokenId t) { return t < 10; });
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(TokenStreamTest, CoversAllPairsAboveAlpha) {
  // Exhausting the stream must emit every (q, t) pair with sim >= alpha.
  auto w = testing::MakeRandomWorkload(40, 200, 5, 15, 99);
  const auto query_span = w.corpus.sets.Tokens(1);
  std::vector<TokenId> query(query_span.begin(), query_span.end());
  const Score alpha = 0.75;
  TokenStream stream(query, w.index.get(), alpha, [&](TokenId t) {
    return std::binary_search(w.corpus.vocabulary.begin(),
                              w.corpus.vocabulary.end(), t);
  });
  std::set<std::pair<uint32_t, TokenId>> emitted;
  while (auto t = stream.Next()) {
    EXPECT_TRUE(emitted.emplace(t->query_pos, t->token).second)
        << "duplicate tuple";
  }
  for (uint32_t qi = 0; qi < query.size(); ++qi) {
    for (TokenId t : w.corpus.vocabulary) {
      const bool is_self = t == query[qi];
      const Score s = is_self ? 1.0 : w.sim->Similarity(query[qi], t);
      if (s >= alpha && (is_self || t != query[qi])) {
        if (is_self || s >= alpha) {
          const bool found = emitted.count({qi, t}) > 0;
          if (is_self) {
            EXPECT_TRUE(found) << "missing self tuple q=" << qi;
          } else {
            EXPECT_TRUE(found) << "missing tuple q=" << qi << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(TokenStreamTest, StopThresholdWithholdsBelowTau) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.95);
  sim.Set(0, 2, 0.85);
  sim.Set(0, 3, 0.82);
  ExactKnnIndex index({1, 2, 3}, &sim);
  TokenStream stream({0}, &index, 0.8, [](TokenId) { return false; });
  auto t1 = stream.Next(/*stop_sim=*/0.9);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->token, 1u);
  // The refill after the pop already withheld 0.85 < 0.9: the element's
  // remaining neighbors are below the threshold, so the stream is stopped.
  EXPECT_FALSE(stream.Next(0.9).has_value());
  EXPECT_TRUE(stream.stopped());
  EXPECT_GE(stream.stop_sim(), 0.85 - 1e-12);
  EXPECT_LT(stream.stop_sim(), 0.9);
}

TEST(TokenStreamTest, DrainWithoutStopNeverMarksStopped) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.9);
  ExactKnnIndex index({0, 1}, &sim);
  TokenStream stream({0}, &index, 0.8, [](TokenId) { return true; });
  while (stream.Next()) {
  }
  EXPECT_FALSE(stream.stopped());
  EXPECT_DOUBLE_EQ(stream.stop_sim(), 0.0);
  EXPECT_FALSE(stream.PeekSim().has_value());
}

TEST(TokenStreamTest, RisingStopThresholdMatchesPrefixOfFullDrain) {
  // Feeding a monotonically rising stop threshold must emit exactly a
  // prefix of the unbounded stream (same tuples, same order).
  auto w = testing::MakeRandomWorkload(40, 250, 5, 15, 88);
  const auto query_span = w.corpus.sets.Tokens(2);
  std::vector<TokenId> query(query_span.begin(), query_span.end());
  std::vector<StreamTuple> full;
  {
    TokenStream stream(query, w.index.get(), 0.7, [](TokenId) { return true; });
    while (auto t = stream.Next()) full.push_back(*t);
  }
  w.index->ResetCursors();
  TokenStream bounded(query, w.index.get(), 0.7, [](TokenId) { return true; });
  std::vector<StreamTuple> prefix;
  // Ramp the threshold with the emitted count; stops somewhere mid-stream.
  while (auto t = bounded.Next(0.70 + 0.002 * static_cast<Score>(prefix.size()))) {
    prefix.push_back(*t);
  }
  ASSERT_LE(prefix.size(), full.size());
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].token, full[i].token) << i;
    EXPECT_EQ(prefix[i].query_pos, full[i].query_pos) << i;
    EXPECT_DOUBLE_EQ(prefix[i].sim, full[i].sim) << i;
  }
  if (prefix.size() < full.size()) {
    EXPECT_TRUE(bounded.stopped());
    // The slack bound covers every unemitted pair.
    for (size_t i = prefix.size(); i < full.size(); ++i) {
      EXPECT_LE(full[i].sim, bounded.stop_sim() + 1e-12) << i;
    }
  }
}

TEST(ExactKnnIndexTest, BoundedProbeSkipsOrderingBelowStop) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.9);
  sim.Set(0, 2, 0.85);
  ExactKnnIndex index({1, 2}, &sim);
  Neighbor n;
  // Fresh cursor whose max (0.9) is below the stop: withheld without any
  // chunk ordering, bound reported.
  EXPECT_EQ(index.NextNeighborBounded(0, 0.8, 0.95, &n),
            ProbeOutcome::kWithheld);
  EXPECT_EQ(n.token, kInvalidToken);
  EXPECT_DOUBLE_EQ(n.sim, 0.9);
  // Lower stop: the neighbor flows again (nothing was consumed).
  EXPECT_EQ(index.NextNeighborBounded(0, 0.8, 0.5, &n),
            ProbeOutcome::kNeighbor);
  EXPECT_EQ(n.token, 1u);
  EXPECT_EQ(index.NextNeighborBounded(0, 0.8, 0.87, &n),
            ProbeOutcome::kWithheld);
  EXPECT_DOUBLE_EQ(n.sim, 0.85);
  EXPECT_EQ(index.NextNeighborBounded(0, 0.8, 0.5, &n),
            ProbeOutcome::kNeighbor);
  EXPECT_EQ(n.token, 2u);
  EXPECT_EQ(index.NextNeighborBounded(0, 0.8, 0.0, &n),
            ProbeOutcome::kExhausted);
}

TEST(TokenStreamTest, EmittedCountTracksTuples) {
  testing::TableSimilarity sim;
  sim.Set(0, 1, 0.9);
  ExactKnnIndex index({0, 1}, &sim);
  TokenStream stream({0}, &index, 0.8, [](TokenId) { return true; });
  EXPECT_EQ(stream.emitted(), 0u);
  while (stream.Next()) {
  }
  EXPECT_EQ(stream.emitted(), 2u);  // self + neighbor
}

// --------------------------------------------------------- CosineLshIndex --

TEST(LshIndexTest, FindsHighSimilarityNeighborsWithManyTables) {
  auto w = testing::MakeRandomWorkload(30, 400, 5, 15, 123, /*coverage=*/1.0);
  LshIndexSpec spec;
  spec.num_tables = 24;
  spec.bits_per_table = 6;
  CosineLshIndex lsh(w.corpus.vocabulary, &w.model->store(), w.sim.get(), spec);

  // Recall of LSH vs exact for a handful of query tokens.
  size_t exact_total = 0, lsh_found = 0;
  for (size_t i = 0; i < 10 && i < w.corpus.vocabulary.size(); ++i) {
    const TokenId q = w.corpus.vocabulary[i * 7 % w.corpus.vocabulary.size()];
    std::set<TokenId> exact_neighbors;
    w.index->ResetCursors();
    while (auto n = w.index->NextNeighbor(q, 0.9)) exact_neighbors.insert(n->token);
    lsh.ResetCursors();
    while (auto n = lsh.NextNeighbor(q, 0.9)) {
      lsh_found += exact_neighbors.count(n->token);
    }
    exact_total += exact_neighbors.size();
  }
  if (exact_total > 0) {
    EXPECT_GE(static_cast<double>(lsh_found) / exact_total, 0.6)
        << "LSH recall too low: " << lsh_found << "/" << exact_total;
  }
}

TEST(LshIndexTest, DescendingOrderWithinCursor) {
  auto w = testing::MakeRandomWorkload(30, 300, 5, 15, 321, /*coverage=*/1.0);
  LshIndexSpec spec;
  spec.num_tables = 8;
  spec.bits_per_table = 8;
  CosineLshIndex lsh(w.corpus.vocabulary, &w.model->store(), w.sim.get(), spec);
  const TokenId q = w.corpus.vocabulary[0];
  Score prev = 1.0;
  while (auto n = lsh.NextNeighbor(q, 0.7)) {
    EXPECT_LE(n->sim, prev + 1e-12);
    prev = n->sim;
  }
}

TEST(LshIndexTest, OovQueryHasNoNeighbors) {
  auto w = testing::MakeRandomWorkload(20, 200, 5, 10, 55, /*coverage=*/0.5);
  LshIndexSpec spec;
  CosineLshIndex lsh(w.corpus.vocabulary, &w.model->store(), w.sim.get(), spec);
  // Find an OOV token.
  for (TokenId t : w.corpus.vocabulary) {
    if (!w.model->store().Has(t)) {
      EXPECT_FALSE(lsh.NextNeighbor(t, 0.7).has_value());
      break;
    }
  }
}

}  // namespace
}  // namespace koios::sim
