// RepositoryWatcher (ISSUE 8): the daemon's zero-touch reload path, driven
// deterministically through PollOnce (no thread, no timing). The rules the
// serving contract depends on:
//  * the FIRST successful load builds the engine (the readiness flip);
//  * a settled change hot-swaps; a change is settled only after two
//    identical fingerprints (a push caught mid-copy never loads);
//  * a corrupt push is rejected ONCE (memoized) and the old snapshot keeps
//    answering bit-identically;
//  * a failed poll ("watch.poll" fault) never reaches the load path;
//  * serving memory never aliases the watched inode — an in-place rewrite
//    of the repository file (a `cp` push) cannot poison the live mmap.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "koios/io/repository_v4.h"
#include "koios/net/engine_slot.h"
#include "koios/net/repository_watcher.h"
#include "koios/text/dictionary.h"
#include "koios/util/fault_injector.h"
#include "koios/util/metric_registry.h"
#include "test_util.h"

namespace koios::net {
namespace {

using util::FaultSpec;
using util::ScopedFault;

/// Writes a v4 repository built from a synthetic workload. Different seeds
/// give distinguishable snapshots (set counts differ); corrupt=true flips
/// one byte mid-file so the CRC framing rejects it.
testing::RandomWorkload WriteRepository(const std::string& path,
                                        size_t num_sets, uint64_t seed,
                                        bool corrupt = false) {
  auto w = testing::MakeRandomWorkload(num_sets, 400, 5, 15, seed);
  text::Dictionary dict;
  for (TokenId t = 0; t < 400; ++t) dict.Intern("tok" + std::to_string(t));
  EXPECT_TRUE(
      io::SaveRepositoryV4(dict, w.corpus.sets, &w.model->store(), path).ok());
  if (corrupt) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff mid = f.tellg() / 2;
    f.seekg(mid);
    const char byte = static_cast<char>(f.get() ^ 0x5a);
    f.seekp(mid);
    f.put(byte);
  }
  return w;
}

std::string ScratchPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<core::ResultEntry> RunQuery(serve::QueryEngine* engine,
                                        const std::vector<TokenId>& query) {
  core::SearchParams params;
  params.k = 5;
  params.num_threads = 1;
  auto result = engine->Submit(query, params).get();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value().topk : std::vector<core::ResultEntry>{};
}

TEST(RepositoryWatcherTest, FirstLoadBuildsTheEngineWithoutDebounce) {
  const std::string path = ScratchPath("koios_watch_first.bin");
  WriteRepository(path, 60, 21001);
  EngineSlot slot;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, nullptr, options);

  EXPECT_EQ(slot.Get(), nullptr);
  EXPECT_TRUE(watcher.PollOnce().ok());  // one poll: ready (no debounce wait)
  std::shared_ptr<serve::QueryEngine> engine = slot.Get();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->snapshot()->sets().size(), 60u);
  EXPECT_EQ(watcher.stats().initial_loads, 1u);

  // An unchanged file is a no-op forever after.
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(slot.Get(), engine);  // same engine object, no rebuild
  EXPECT_EQ(watcher.stats().changes_detected, 1u);
  std::remove(path.c_str());
}

TEST(RepositoryWatcherTest, SettledChangeHotSwapsAfterTwoPolls) {
  const std::string path = ScratchPath("koios_watch_swap.bin");
  WriteRepository(path, 60, 21002);
  EngineSlot slot;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, nullptr, options);
  ASSERT_TRUE(watcher.PollOnce().ok());
  std::shared_ptr<serve::QueryEngine> engine = slot.Get();
  ASSERT_NE(engine, nullptr);

  // Push a new snapshot (more sets, different seed). Poll 1 sees a NEW
  // fingerprint — debounce: no load yet. Poll 2 sees it settled: swap.
  WriteRepository(path, 90, 21003);
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().swaps_completed, 0u);
  EXPECT_EQ(engine->snapshot()->sets().size(), 60u);
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().swaps_completed, 1u);
  EXPECT_EQ(slot.Get(), engine);  // hot swap: same engine, new snapshot
  EXPECT_EQ(engine->snapshot()->sets().size(), 90u);
  std::remove(path.c_str());
}

TEST(RepositoryWatcherTest, CorruptPushIsRejectedOnceAndOldKeepsServing) {
  const std::string path = ScratchPath("koios_watch_corrupt.bin");
  auto w = WriteRepository(path, 60, 21004);
  EngineSlot slot;
  util::MetricRegistry registry;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, &registry, options);
  ASSERT_TRUE(watcher.PollOnce().ok());
  std::shared_ptr<serve::QueryEngine> engine = slot.Get();
  ASSERT_NE(engine, nullptr);

  const auto query_tokens = w.corpus.sets.Tokens(SetId{3});
  const std::vector<TokenId> query(query_tokens.begin(), query_tokens.end());
  const auto before = RunQuery(engine.get(), query);

  WriteRepository(path, 90, 21005, /*corrupt=*/true);
  EXPECT_TRUE(watcher.PollOnce().ok());            // debounce poll
  EXPECT_FALSE(watcher.PollOnce().ok());           // settled: load rejected
  EXPECT_EQ(watcher.stats().swap_failures, 1u);
  EXPECT_EQ(watcher.stats().swaps_completed, 0u);

  // Memoized rejection: the same corrupt bytes are not re-attempted, so a
  // daemon next to a bad push doesn't reload-fail on every poll.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().swap_failures, 1u);

  // The old snapshot answers exactly as before the push.
  const auto after = RunQuery(engine.get(), query);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].set, before[i].set);
    EXPECT_EQ(after[i].score, before[i].score);
  }

  // The metric family agrees with stats().
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("koios_watch_swap_failures_total 1"),
            std::string::npos);

  // A GOOD push after the bad one recovers: new fingerprint clears the
  // rejection memo.
  WriteRepository(path, 90, 21006);
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().swaps_completed, 1u);
  EXPECT_EQ(engine->snapshot()->sets().size(), 90u);
  std::remove(path.c_str());
}

TEST(RepositoryWatcherTest, PollFaultNeverReachesTheSwapPath) {
  const std::string path = ScratchPath("koios_watch_fault.bin");
  WriteRepository(path, 60, 21007);
  EngineSlot slot;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, nullptr, options);
  ASSERT_TRUE(watcher.PollOnce().ok());

  // Push a change, then fail EVERY poll: the change must not load, no
  // matter how many times the watcher looks.
  WriteRepository(path, 90, 21008);
  {
    FaultSpec spec;
    spec.fail_probability = 1.0;
    ScopedFault fault("watch.poll", spec);
    for (int i = 0; i < 8; ++i) {
      EXPECT_FALSE(watcher.PollOnce().ok());
    }
  }
  EXPECT_EQ(watcher.stats().poll_failures, 8u);
  EXPECT_EQ(watcher.stats().swaps_completed, 0u);
  EXPECT_EQ(slot.Get()->snapshot()->sets().size(), 60u);

  // Disarmed, the pending change lands through the normal debounce.
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().swaps_completed, 1u);
  EXPECT_EQ(slot.Get()->snapshot()->sets().size(), 90u);
  std::remove(path.c_str());
}

// Regression for the crash this PR fixed: serving memory must not alias
// the watched inode. A `cp`-style push REWRITES the same inode in place;
// if the snapshot mmap'd the watched file directly, the live mapping's
// bytes would change underneath running queries (SIGSEGV on garbage
// offsets at worst). The watcher loads through an unlinked private spool
// copy, so the overwrite is invisible to serving.
TEST(RepositoryWatcherTest, InPlaceOverwriteCannotPoisonServingMemory) {
  const std::string path = ScratchPath("koios_watch_inplace.bin");
  auto w = WriteRepository(path, 60, 21009);
  EngineSlot slot;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, nullptr, options);
  ASSERT_TRUE(watcher.PollOnce().ok());
  std::shared_ptr<serve::QueryEngine> engine = slot.Get();
  ASSERT_NE(engine, nullptr);

  std::vector<std::vector<TokenId>> queries;
  std::vector<std::vector<core::ResultEntry>> reference;
  for (SetId id = 0; id < 8; ++id) {
    const auto tokens = w.corpus.sets.Tokens(id);
    queries.emplace_back(tokens.begin(), tokens.end());
    reference.push_back(RunQuery(engine.get(), queries.back()));
  }

  // Overwrite the watched file IN PLACE with corrupt bytes — same inode,
  // the worst-case push (`cp` truncates and rewrites; the repository save
  // itself is rename-atomic, so clobber the inode by hand). No poll has
  // happened yet: a direct mmap of the watched file would now be garbage
  // under the engine.
  const std::string bad_path = ScratchPath("koios_watch_inplace_bad.bin");
  WriteRepository(bad_path, 60, 21009, /*corrupt=*/true);
  {
    std::ifstream src(bad_path, std::ios::binary);
    std::ofstream dst(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(src && dst);
    dst << src.rdbuf();
  }
  std::remove(bad_path.c_str());

  // Queries against the live snapshot are untouched — bit-identical.
  for (size_t q = 0; q < queries.size(); ++q) {
    const auto got = RunQuery(engine.get(), queries[q]);
    ASSERT_EQ(got.size(), reference[q].size()) << "query " << q;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].set, reference[q][i].set) << "query " << q;
      EXPECT_EQ(got[i].score, reference[q][i].score) << "query " << q;
    }
  }

  // The watcher then rejects the corrupt content fail-closed, still
  // serving the old snapshot; and it leaves no spool litter behind.
  EXPECT_TRUE(watcher.PollOnce().ok());   // debounce
  EXPECT_FALSE(watcher.PollOnce().ok());  // rejected
  EXPECT_EQ(watcher.stats().swap_failures, 1u);
  const auto still = RunQuery(engine.get(), queries[0]);
  ASSERT_EQ(still.size(), reference[0].size());
  for (size_t i = 0; i < still.size(); ++i) {
    EXPECT_EQ(still[i].score, reference[0][i].score);
  }
  std::ifstream spool(path + ".spool." + std::to_string(::getpid()));
  EXPECT_FALSE(static_cast<bool>(spool)) << "spool copy left behind";
  std::remove(path.c_str());
}

TEST(RepositoryWatcherTest, MissingFileCountsPollFailuresUntilItAppears) {
  const std::string path = ScratchPath("koios_watch_missing.bin");
  std::remove(path.c_str());
  EngineSlot slot;
  WatcherOptions options;
  options.engine.num_threads = 1;
  RepositoryWatcher watcher(path, &slot, nullptr, options);

  // Pointed at nothing: unready, counting failures, never crashing.
  EXPECT_FALSE(watcher.PollOnce().ok());
  EXPECT_FALSE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().poll_failures, 2u);
  EXPECT_EQ(slot.Get(), nullptr);

  // The file appearing is the readiness flip — zero-touch.
  WriteRepository(path, 40, 21010);
  EXPECT_TRUE(watcher.PollOnce().ok());
  ASSERT_NE(slot.Get(), nullptr);
  EXPECT_EQ(slot.Get()->snapshot()->sets().size(), 40u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koios::net
