// make_serve_fixture — writes a synthetic repository file (and optionally
// a matching query workload) for the serverd smoke script, the chaos bench
// and CI. Deterministic per seed, so two invocations with different seeds
// give the "old" and "new" snapshots of a hot-push scenario.
//
//   make_serve_fixture /tmp/repo.bin --sets 400 --seed 7
//   make_serve_fixture /tmp/new.bin --seed 8 --queries /tmp/q.txt
//   make_serve_fixture /tmp/bad.bin --seed 9 --corrupt     # CRC-broken
//
// Exit status: 0 ok, 1 usage, 2 write failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>

#include "koios/data/corpus.h"
#include "koios/embedding/synthetic_model.h"
#include "koios/io/repository_v4.h"
#include "koios/io/serialization.h"
#include "koios/text/dictionary.h"

int main(int argc, char** argv) {
  using namespace koios;
  if (argc < 2 || argv[1][0] == '-') {
    std::fprintf(stderr,
                 "usage: %s <out.bin> [--sets N] [--vocab N] [--min-size N] "
                 "[--max-size N] [--seed S] [--v3] [--queries PATH] "
                 "[--num-queries N] [--corrupt]\n",
                 argv[0]);
    return 1;
  }
  const std::string out_path = argv[1];
  size_t num_sets = 400;
  size_t vocab = 1200;
  size_t min_size = 5;
  size_t max_size = 20;
  uint64_t seed = 7;
  bool v3 = false;
  bool corrupt = false;
  std::string queries_path;
  size_t num_queries = 32;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> long long {
      return i + 1 < argc ? std::atoll(argv[++i]) : 0;
    };
    if (arg == "--sets") {
      num_sets = static_cast<size_t>(next());
    } else if (arg == "--vocab") {
      vocab = static_cast<size_t>(next());
    } else if (arg == "--min-size") {
      min_size = static_cast<size_t>(next());
    } else if (arg == "--max-size") {
      max_size = static_cast<size_t>(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(next());
    } else if (arg == "--num-queries") {
      num_queries = static_cast<size_t>(next());
    } else if (arg == "--queries" && i + 1 < argc) {
      queries_path = argv[++i];
    } else if (arg == "--v3") {
      v3 = true;
    } else if (arg == "--corrupt") {
      corrupt = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 1;
    }
  }

  data::CorpusSpec spec;
  spec.name = "serve-fixture";
  spec.num_sets = num_sets;
  spec.vocab_size = vocab;
  spec.element_skew = 0.8;
  spec.size_distribution = data::SizeDistribution::kUniform;
  spec.min_set_size = min_size;
  spec.max_set_size = max_size;
  spec.seed = seed;
  const data::Corpus corpus = data::GenerateCorpus(spec);

  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = vocab;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 6.0;
  model_spec.noise_sigma = 0.4;
  model_spec.coverage = 0.9;
  model_spec.seed = seed + 1;
  embedding::SyntheticEmbeddingModel model(model_spec);

  text::Dictionary dict;
  for (size_t t = 0; t < vocab; ++t) dict.Intern("tok" + std::to_string(t));

  const util::Status status =
      v3 ? io::SaveRepository(dict, corpus.sets, &model.store(), out_path)
         : io::SaveRepositoryV4(dict, corpus.sets, &model.store(), out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", out_path.c_str(),
                 status.ToString().c_str());
    return 2;
  }

  if (corrupt) {
    // Flip one byte past the header so the CRC framing catches it: the
    // fail-closed reload path must reject this file.
    std::FILE* f = std::fopen(out_path.c_str(), "r+b");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot reopen %s to corrupt it\n",
                   out_path.c_str());
      return 2;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    const long target = size / 2;
    std::fseek(f, target, SEEK_SET);
    int byte = std::fgetc(f);
    std::fseek(f, target, SEEK_SET);
    std::fputc(byte ^ 0x5a, f);
    std::fclose(f);
  }

  if (!queries_path.empty()) {
    // Queries are drawn from the corpus's own sets (every set shares its
    // query's vocabulary), one space-separated token-id line per query —
    // the format koios_client --stdin and the smoke script consume.
    std::ofstream qf(queries_path);
    if (!qf) {
      std::fprintf(stderr, "cannot create %s\n", queries_path.c_str());
      return 2;
    }
    std::mt19937_64 rng(seed + 2);
    for (size_t q = 0; q < num_queries; ++q) {
      const SetId id =
          static_cast<SetId>(rng() % corpus.sets.size());
      bool first = true;
      for (TokenId t : corpus.sets.Tokens(id)) {
        if (!first) qf << ' ';
        qf << t;
        first = false;
      }
      qf << '\n';
    }
  }

  std::printf("wrote %s (%zu sets, vocab %zu, v%d%s)%s%s\n", out_path.c_str(),
              corpus.sets.size(), vocab, v3 ? 3 : 4,
              corrupt ? ", CORRUPTED" : "",
              queries_path.empty() ? "" : " + queries ",
              queries_path.c_str());
  return 0;
}
