#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[label]: target`, resolves relative targets
against the file's directory, and reports targets that do not exist.
External schemes (http/https/mailto) and pure in-page anchors are
skipped; `path#anchor` links are checked for the path part only.

Usage: tools/check_md_links.py [root]   (default: repo root)
Exit codes: 0 ok, 1 broken links found.
"""
import os
import re
import sys

INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".claude"}


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def targets_of(text):
    for match in INLINE.finditer(text):
        yield match.group(1)
    for match in REFDEF.finditer(text):
        yield match.group(1)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    broken = []
    for path in md_files(root):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in targets_of(text):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = target.split("#", 1)[0]
            if not resolved:
                continue
            if resolved.startswith("/"):
                resolved = os.path.join(root, resolved.lstrip("/"))
            else:
                resolved = os.path.join(os.path.dirname(path), resolved)
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(path, root), target))
    for path, target in broken:
        print(f"BROKEN {path}: {target}")
    if broken:
        print(f"{len(broken)} broken link(s)")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
