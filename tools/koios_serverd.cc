// koios_serverd — the failure-hardened network front-end. Serves the Koios
// top-k semantic overlap search from a repository file over TCP (binary
// protocol + line-JSON + /healthz //readyz //metrics HTTP), with:
//
//   * zero-touch snapshot reload: a watcher thread polls the repository
//     file and hot-swaps on change, fail-closed (a corrupt push is
//     rejected; the old snapshot keeps answering);
//   * graceful drain: SIGTERM/SIGINT stop accepting, flip /readyz to 503,
//     finish in-flight queries under --drain-ms, then exit 0;
//   * first-class metrics: every counter the serve stack keeps, exposed
//     in Prometheus text form on GET /metrics of the SAME listener.
//
// The daemon starts UNREADY (no engine) and becomes ready when the first
// snapshot load succeeds — pointed at a missing or corrupt file it comes
// up, answers health checks, and waits for a good push instead of
// crash-looping.
//
//   koios_serverd --repo /path/repo.bin [--port 0] [--threads 4] ...
//
// Exit status: 0 clean drain / clean stop, 1 usage, 2 startup failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "koios/net/engine_slot.h"
#include "koios/net/repository_watcher.h"
#include "koios/net/server.h"
#include "koios/serve/engine_metrics.h"
#include "koios/util/metric_registry.h"
#include "koios/util/trace_recorder.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --repo <file> [options]\n"
      "  --repo PATH            repository file to serve (watched for "
      "changes)\n"
      "  --port N               listen port (default 0 = ephemeral; the "
      "chosen\n"
      "                         port is printed to stdout)\n"
      "  --bind ADDR            bind address (default 127.0.0.1)\n"
      "  --port-file PATH       also write the chosen port to this file\n"
      "  --threads N            query worker threads (default 4)\n"
      "  --shards N             corpus shards per query (default 1): the "
      "set\n"
      "                         collection is partitioned N ways and every\n"
      "                         query fans out with cross-shard θlb "
      "exchange;\n"
      "                         results are bit-identical at any N\n"
      "  --queue N              admission queue bound (default 256)\n"
      "  --deadline-ms N        default per-query deadline (default 0 = "
      "none)\n"
      "  --cache-bytes N        cursor cache byte budget (default 64MiB)\n"
      "  --poll-ms N            repository watch interval (default 500)\n"
      "  --max-conns N          connection cap (default 256)\n"
      "  --max-request-bytes N  request size cap (default 1MiB)\n"
      "  --drain-ms N           graceful drain budget on SIGTERM (default "
      "5000)\n"
      "  --read-deadline-ms N   slow-loris close threshold (default 10000)\n"
      "  --write-deadline-ms N  stalled-reader close threshold (default "
      "10000)\n"
      "  --idle-ms N            idle connection close (default 60000, 0 = "
      "never)\n"
      "  --quantize             build the int8 embedding tier on load\n"
      "  --trace-sample N       trace 1 in N queries (default 16, 0 = "
      "tracing\n"
      "                         off); sampled spans feed /debug/tracez and\n"
      "                         koios_phase_seconds\n"
      "  --trace-ring N         per-thread span ring capacity (default "
      "4096)\n"
      "  --slow-query-ms N      log span tree + stats for queries slower "
      "than\n"
      "                         this (default 0 = off; 1 line/sec max)\n",
      argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace koios;

  std::string repo;
  std::string port_file;
  net::ServerOptions server_options;
  net::WatcherOptions watcher_options;
  watcher_options.engine.num_threads = 4;
  watcher_options.engine.cursor_cache_bytes = 64u << 20;
  long long trace_sample = 16;
  long long trace_ring = 4096;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](long long* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoll(argv[++i]);
      return true;
    };
    long long v = 0;
    if (arg == "--repo" && i + 1 < argc) {
      repo = argv[++i];
    } else if (arg == "--bind" && i + 1 < argc) {
      server_options.bind_address = argv[++i];
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--port" && next(&v)) {
      server_options.port = static_cast<uint16_t>(v);
    } else if (arg == "--threads" && next(&v)) {
      watcher_options.engine.num_threads = static_cast<size_t>(v);
    } else if (arg == "--shards" && next(&v)) {
      watcher_options.engine.num_shards = static_cast<size_t>(v);
    } else if (arg == "--queue" && next(&v)) {
      watcher_options.engine.max_queue = static_cast<size_t>(v);
    } else if (arg == "--deadline-ms" && next(&v)) {
      server_options.default_query_deadline = std::chrono::milliseconds(v);
    } else if (arg == "--cache-bytes" && next(&v)) {
      watcher_options.engine.cursor_cache_bytes = static_cast<size_t>(v);
    } else if (arg == "--poll-ms" && next(&v)) {
      watcher_options.poll_interval = std::chrono::milliseconds(v);
    } else if (arg == "--max-conns" && next(&v)) {
      server_options.max_connections = static_cast<size_t>(v);
    } else if (arg == "--max-request-bytes" && next(&v)) {
      server_options.max_request_bytes = static_cast<size_t>(v);
    } else if (arg == "--drain-ms" && next(&v)) {
      server_options.drain_deadline = std::chrono::milliseconds(v);
    } else if (arg == "--read-deadline-ms" && next(&v)) {
      server_options.read_deadline = std::chrono::milliseconds(v);
    } else if (arg == "--write-deadline-ms" && next(&v)) {
      server_options.write_deadline = std::chrono::milliseconds(v);
    } else if (arg == "--idle-ms" && next(&v)) {
      server_options.idle_timeout = std::chrono::milliseconds(v);
    } else if (arg == "--quantize") {
      watcher_options.snapshot.quantize_embeddings = true;
    } else if (arg == "--trace-sample" && next(&v)) {
      trace_sample = v;
    } else if (arg == "--trace-ring" && next(&v)) {
      trace_ring = v;
    } else if (arg == "--slow-query-ms" && next(&v)) {
      watcher_options.engine.slow_query_threshold =
          std::chrono::milliseconds(v);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (repo.empty()) return Usage(argv[0]);

  // SIGPIPE-proofing, belt and suspenders with MSG_NOSIGNAL on every send:
  // a client that vanishes mid-stream must surface as EPIPE on ONE
  // connection, never as a process-killing signal.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  // Tracing configures before any serving thread exists; disabled tracing
  // (--trace-sample 0) leaves only a relaxed load + branch on hot paths.
  if (trace_sample > 0) {
    util::TraceRecorder::Options trace_options;
    trace_options.sample_every = static_cast<uint64_t>(trace_sample);
    if (trace_ring > 0) {
      trace_options.ring_spans = static_cast<size_t>(trace_ring);
    }
    util::TraceRecorder::Instance().Configure(trace_options);
  }

  util::MetricRegistry registry;
  net::EngineSlot slot;
  // The engine family resolves through the slot per scrape: all zeros
  // until the first snapshot loads, then live engine/cursor-cache stats.
  serve::RegisterEngineMetrics(
      &registry, [&slot]() -> std::shared_ptr<const serve::QueryEngine> {
        return slot.Get();
      });
  net::RepositoryWatcher watcher(repo, &slot, &registry, watcher_options);
  net::Server server(&slot, &registry, server_options);

  if (util::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "koios_serverd: %s\n", s.ToString().c_str());
    return 2;
  }
  watcher.Start();

  std::printf("koios_serverd listening on %s:%u (repo %s)\n",
              server_options.bind_address.c_str(), server.port(),
              repo.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Graceful drain: stop accepting, answer kUnavailable, finish + flush
  // in-flight work (bounded by --drain-ms), then exit 0.
  std::fprintf(stderr, "koios_serverd: draining...\n");
  server.Drain();
  watcher.Stop();
  std::fprintf(stderr, "koios_serverd: drained, exiting\n");
  return 0;
}
