#!/usr/bin/env bash
# serverd_smoke.sh — end-to-end smoke of the REAL koios_serverd process
# (the chaos bench drives the same stack in-process; this script is the
# only place the actual signal handler / exit-status story is exercised).
#
#   tools/serverd_smoke.sh [BUILD_DIR]       # default: build
#
# Acts, in order:
#   1. fixture + daemon A starts, becomes ready (zero-touch initial load)
#   2. happy path: ping, one query, a batch over the binary protocol,
#      line-JSON via the same listener
#   3. metrics scrape: server + engine + watcher families present, incl.
#      per-dialect request latency and koios_phase_seconds span histograms
#   4. hot snapshot push (atomic rename): watcher swaps, still ready,
#      queries keep answering
#   5. corrupt push: swap rejected (fail-closed), old snapshot answers,
#      swap_failures counter ticks
#   5b. /debug/tracez scrape mid-run: parses as Chrome trace-event JSON
#      with search + swap spans; saved as serverd_tracez.json for CI
#   6. daemon B (tiny queue, 1 worker, small request cap) pointed at a
#      MISSING repository: up but unready, /readyz 503, sheds carry a
#      retry hint; pushing the fixture flips it ready with zero touches
#   7. oversized request rejected from the frame header (daemon B's cap)
#   8. retry-after on the tiny queue: a 64-query burst must shed with
#      hint-carrying statuses and still answer some queries
#   9. SIGTERM drain of daemon A while a batch is in flight: exits 0,
#      "drained" in the log
#
# Any failed check aborts with a nonzero exit (set -e); daemons are
# reaped on exit.
set -euo pipefail

BUILD_DIR="${1:-build}"
for bin in koios_serverd koios_client make_serve_fixture; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "missing $BUILD_DIR/$bin (build first)" >&2
    exit 1
  fi
done
SERVERD="$BUILD_DIR/koios_serverd"
CLIENT="$BUILD_DIR/koios_client"
FIXTURE="$BUILD_DIR/make_serve_fixture"

WORK="$(mktemp -d /tmp/serverd_smoke.XXXXXX)"
PID_A="" PID_B=""
cleanup() {
  [[ -n "$PID_A" ]] && kill -9 "$PID_A" 2>/dev/null || true
  [[ -n "$PID_B" ]] && kill -9 "$PID_B" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  for log in "$WORK"/serverd_*.log; do
    [[ -f "$log" ]] && { echo "---- $log ----" >&2; cat "$log" >&2; }
  done
  if [[ -n "${PORT_A:-}" ]]; then
    echo "---- daemon A watch metrics ----" >&2
    "$CLIENT" --port "$PORT_A" --http /metrics 2>/dev/null |
      grep -E '^koios_(watch|server_ready)' >&2 || true
  fi
  exit 1
}
note() { echo "--- $*"; }

wait_file() { # path, tries
  local i
  for ((i = 0; i < ${2:-50}; i++)); do
    [[ -s "$1" ]] && return 0
    sleep 0.1
  done
  return 1
}

wait_ready() { # port, tries
  local i
  for ((i = 0; i < ${2:-150}; i++)); do
    if "$CLIENT" --port "$1" --http /readyz >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  return 1
}

# A settled change triggers a synchronous spool + load + engine build in
# the watcher thread, which can take seconds on a loaded runner — poll the
# metric generously.
wait_metric() { # port, exact metric line, tries
  local i
  for ((i = 0; i < ${3:-150}; i++)); do
    "$CLIENT" --port "$1" --http /metrics 2>/dev/null |
      grep -q "^$2\$" && return 0
    sleep 0.1
  done
  return 1
}

# ---- act 1: fixture + daemon A -------------------------------------------
note "act 1: start daemon A on a fresh fixture"
"$FIXTURE" "$WORK/repo.bin" --sets 1500 --seed 7 \
  --queries "$WORK/queries.txt" --num-queries 64 >/dev/null
# --queue covers act 9's 320-query in-flight batch (the tiny-queue
# shedding story is daemon B's).
"$SERVERD" --repo "$WORK/repo.bin" --port 0 --port-file "$WORK/port_a" \
  --threads 2 --queue 1024 --poll-ms 100 >"$WORK/serverd_a.log" 2>&1 &
PID_A=$!
wait_file "$WORK/port_a" || fail "daemon A never wrote its port file"
PORT_A="$(cat "$WORK/port_a")"
wait_ready "$PORT_A" || fail "daemon A never became ready"
"$CLIENT" --port "$PORT_A" --http /healthz | grep -q '^ok$' ||
  fail "healthz"

# ---- act 2: happy path ----------------------------------------------------
note "act 2: happy path (ping, query, batch, JSON line mode)"
"$CLIENT" --port "$PORT_A" --ping | grep -q pong || fail "ping"
Q1="$(head -1 "$WORK/queries.txt")"
[[ -n "$("$CLIENT" --port "$PORT_A" --query "$Q1" --k 5)" ]] ||
  fail "single query returned nothing"
BATCH_LINES="$("$CLIENT" --port "$PORT_A" --stdin <"$WORK/queries.txt" |
  cut -f1 | sort -un | wc -l)"
[[ "$BATCH_LINES" -eq 64 ]] ||
  fail "batch answered $BATCH_LINES of 64 queries"
# Line-JSON on the same listener, strict parser: a typo must fail loud.
JSON_TOKENS="[${Q1// /,}]"
exec 3<>"/dev/tcp/127.0.0.1/$PORT_A"
printf '{"tokens":%s,"k":3}\n{"tokens":%s,"aplha":0.9}\n' \
  "$JSON_TOKENS" "$JSON_TOKENS" >&3
IFS= read -r line1 <&3
IFS= read -r line2 <&3
exec 3<&- 3>&-
grep -q '"status":"ok"' <<<"$line1" || fail "JSON query: $line1"
grep -q '"status":"invalid_argument".*aplha' <<<"$line2" ||
  fail "JSON strictness: $line2"

# ---- act 3: metrics scrape ------------------------------------------------
note "act 3: metrics scrape"
METRICS="$("$CLIENT" --port "$PORT_A" --http /metrics)"
for series in koios_server_responses_ok_total koios_server_ready \
  koios_queries_completed_total koios_cursor_cache_hits_total \
  koios_watch_initial_loads_total; do
  grep -q "^$series" <<<"$METRICS" || fail "metrics missing $series"
done
grep -q '^koios_server_ready 1$' <<<"$METRICS" || fail "not ready in metrics"
# Observability families: request latency split by wire dialect, and the
# per-phase span histograms (act 2's traffic guarantees sampled queries
# at the default 1-in-16 rate).
grep -q '^koios_server_request_seconds_bucket{dialect="binary"' \
  <<<"$METRICS" || fail "metrics missing binary-dialect latency"
grep -q '^koios_server_request_seconds_bucket{dialect="json"' \
  <<<"$METRICS" || fail "metrics missing json-dialect latency"
grep -q '^koios_phase_seconds_bucket{phase="search"' <<<"$METRICS" ||
  fail "metrics missing koios_phase_seconds for the search phase"

# ---- act 4: hot snapshot push (atomic rename) -----------------------------
note "act 4: hot snapshot push"
"$FIXTURE" "$WORK/next.bin" --sets 1500 --seed 8 >/dev/null
mv "$WORK/next.bin" "$WORK/repo.bin"
wait_metric "$PORT_A" 'koios_watch_swaps_completed_total 1' ||
  fail "hot push never swapped"
wait_ready "$PORT_A" 10 || fail "daemon A unready after hot push"
[[ -n "$("$CLIENT" --port "$PORT_A" --query "$Q1" --k 5)" ]] ||
  fail "query after hot push"

# ---- act 5: corrupt push is rejected, old snapshot keeps answering --------
note "act 5: corrupt push rejected"
"$FIXTURE" "$WORK/bad.bin" --sets 1500 --seed 9 --corrupt >/dev/null
mv "$WORK/bad.bin" "$WORK/repo.bin"
wait_metric "$PORT_A" 'koios_watch_swap_failures_total 1' ||
  fail "corrupt push was not rejected"
wait_ready "$PORT_A" 10 || fail "daemon A unready after corrupt push"
[[ -n "$("$CLIENT" --port "$PORT_A" --query "$Q1" --k 5)" ]] ||
  fail "old snapshot stopped answering after corrupt push"

# ---- act 5b: /debug/tracez is Perfetto-loadable Chrome trace JSON ---------
note "act 5b: tracez capture parses as Chrome trace-event JSON"
"$CLIENT" --port "$PORT_A" --http /debug/tracez >"$WORK/tracez.json" ||
  fail "tracez scrape failed"
python3 - "$WORK/tracez.json" <<'PY' || fail "tracez JSON validation"
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
names = {e.get("name") for e in events}
assert "search" in names, "no search span: %s" % sorted(n for n in names if n)
assert "watch.swap" in names, "no watch.swap span (acts 4/5 pushed twice)"
complete = [e for e in events if e.get("ph") == "X"]
assert complete, "no complete (ph=X) events"
for e in complete:
    for key in ("name", "ts", "dur", "pid", "tid"):
        assert key in e, "event missing %s: %r" % (key, e)
print("tracez ok: %d events, %d span names" % (len(events), len(names)))
PY
# Keep a copy where CI picks it up as an artifact (repo root when the
# workflow runs this script).
cp "$WORK/tracez.json" serverd_tracez.json 2>/dev/null || true

# ---- act 6: daemon B starts unready against a missing repository ----------
note "act 6: daemon B unready until the first push lands"
"$SERVERD" --repo "$WORK/repo_b.bin" --port 0 --port-file "$WORK/port_b" \
  --threads 1 --queue 1 --poll-ms 100 --max-request-bytes 8192 \
  >"$WORK/serverd_b.log" 2>&1 &
PID_B=$!
wait_file "$WORK/port_b" || fail "daemon B never wrote its port file"
PORT_B="$(cat "$WORK/port_b")"
sleep 0.3
"$CLIENT" --port "$PORT_B" --http /healthz | grep -q '^ok$' ||
  fail "daemon B healthz while unready"
if "$CLIENT" --port "$PORT_B" --http /readyz >/dev/null 2>&1; then
  fail "daemon B claims ready with no repository"
fi
UNREADY_ERR="$("$CLIENT" --port "$PORT_B" --query "$Q1" --retries 0 2>&1 \
  >/dev/null)" && fail "unready daemon B answered a query"
grep -q 'retry after' <<<"$UNREADY_ERR" ||
  fail "unready shed carried no retry hint: $UNREADY_ERR"
"$FIXTURE" "$WORK/stage.bin" --sets 1500 --seed 7 >/dev/null
mv "$WORK/stage.bin" "$WORK/repo_b.bin"
wait_ready "$PORT_B" || fail "daemon B never became ready after the push"

# ---- act 7: oversized request rejected from the header --------------------
note "act 7: oversized request rejected"
BIG_QUERY="$(seq -s' ' 0 2499)" # 2500 tokens ~ 10KB body > 8KB cap
OVERSIZE_ERR="$("$CLIENT" --port "$PORT_B" --query "$BIG_QUERY" \
  --retries 0 2>&1 >/dev/null)" && fail "oversized request was answered"
grep -q 'exceeds' <<<"$OVERSIZE_ERR" ||
  fail "oversized rejection not from the size cap: $OVERSIZE_ERR"
"$CLIENT" --port "$PORT_B" --ping >/dev/null || fail "daemon B after oversize"

# ---- act 8: retry-after on the tiny queue ---------------------------------
note "act 8: tiny-queue burst sheds with retry hints"
BURST_ERR="$WORK/burst_err.txt"
BURST_OUT="$WORK/burst_out.txt"
rc=0
for ((i = 0; i < 64; i++)); do echo "$Q1"; done |
  "$CLIENT" --port "$PORT_B" --stdin >"$BURST_OUT" 2>"$BURST_ERR" || rc=$?
[[ "$rc" -eq 3 ]] || fail "tiny-queue burst was not shed at all (rc=$rc)"
grep -q 'retry after' "$BURST_ERR" ||
  fail "sheds carried no retry hint: $(head -3 "$BURST_ERR")"
[[ -s "$BURST_OUT" ]] || fail "tiny-queue burst answered nothing"
kill -9 "$PID_B" 2>/dev/null
wait "$PID_B" 2>/dev/null || true # reap, so the shell prints no job notice
PID_B=""

# ---- act 9: SIGTERM drain under load exits 0 ------------------------------
note "act 9: SIGTERM drain under load"
DRAIN_OUT="$WORK/drain_out.txt"
(for ((i = 0; i < 5; i++)); do cat "$WORK/queries.txt"; done |
  "$CLIENT" --port "$PORT_A" --stdin >"$DRAIN_OUT" 2>/dev/null) &
BATCH_PID=$!
sleep 0.2
kill -TERM "$PID_A"
rc=0
wait "$PID_A" || rc=$?
PID_A=""
[[ "$rc" -eq 0 ]] || fail "SIGTERM drain exited $rc, want 0"
grep -q 'drained' "$WORK/serverd_a.log" || fail "no drain line in the log"
wait "$BATCH_PID" || fail "in-flight batch failed during drain"
DRAIN_LINES="$(cut -f1 "$DRAIN_OUT" | sort -un | wc -l)"
[[ "$DRAIN_LINES" -eq 320 ]] ||
  fail "drain completed only $DRAIN_LINES of 320 in-flight queries"

echo "serverd smoke: all acts passed"
