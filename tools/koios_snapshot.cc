// koios_snapshot — repository file utility.
//
//   koios_snapshot inspect <file>             header + section summary
//   koios_snapshot verify <file>              full integrity check (CRC of
//                                             every section + content scans
//                                             for v4; full parse for v1/v3)
//   koios_snapshot convert <in> <out>         rewrite as v4 (in may be v1,
//                                             v3 or v4)
//   koios_snapshot convert --v3 <in> <out>    rewrite as v3
//   koios_snapshot shard <file> <N>           partition plan for an N-way
//                                             sharded open (per-shard set
//                                             ranges, token counts, bytes;
//                                             replicated dict/embedding
//                                             footprint)
//
// Exit status: 0 ok, 1 usage, 2 operation failed.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "koios/io/repository_v4.h"
#include "koios/io/serialization.h"
#include "koios/io/shard_slice.h"

namespace {

using koios::io::LoadRepository;
using koios::io::MmapOptions;
using koios::io::MmapRepositoryView;
using koios::io::PeekRepositoryVersion;
using koios::io::SaveRepository;
using koios::io::SaveRepositoryV4;

const char* SectionName(uint32_t kind) {
  switch (kind) {
    case koios::io::kDictOffsets: return "dict-offsets";
    case koios::io::kDictBytes: return "dict-bytes";
    case koios::io::kSetOffsets: return "set-offsets";
    case koios::io::kSetTokens: return "set-tokens";
    case koios::io::kVocabulary: return "vocabulary";
    case koios::io::kEmbedRowOf: return "embed-rowof";
    case koios::io::kEmbedData: return "embed-data";
    case koios::io::kQuantCodes: return "quant-codes";
    case koios::io::kQuantScales: return "quant-scales";
    case koios::io::kQuantOffsets: return "quant-offsets";
    case koios::io::kQuantSums: return "quant-sums";
    default: return "?";
  }
}

int Inspect(const std::string& path) {
  auto version = PeekRepositoryVersion(path);
  if (!version.ok()) {
    std::fprintf(stderr, "error: %s\n", version.status().ToString().c_str());
    return 2;
  }
  std::printf("%s: repository container v%u\n", path.c_str(), version.value());
  if (version.value() != 4) {
    auto repo = LoadRepository(path);
    if (!repo.ok()) {
      std::fprintf(stderr, "error: %s\n", repo.status().ToString().c_str());
      return 2;
    }
    std::printf("  dictionary   %zu tokens\n", repo.value().dict.size());
    std::printf("  sets         %zu (total tokens %zu)\n",
                repo.value().sets.size(), repo.value().sets.TotalTokens());
    if (repo.value().has_embeddings) {
      std::printf("  embeddings   %zu rows x dim %zu%s\n",
                  repo.value().store.covered(), repo.value().store.dim(),
                  repo.value().store.quantized() ? " (int8 tier)" : "");
    } else {
      std::printf("  embeddings   none\n");
    }
    return 0;
  }
  auto view = MmapRepositoryView::Open(path);
  if (!view.ok()) {
    std::fprintf(stderr, "error: %s\n", view.status().ToString().c_str());
    return 2;
  }
  const auto& v = *view.value();
  const auto& h = v.header();
  std::printf("  file size    %zu bytes (mmap)\n", v.file_size());
  std::printf("  dictionary   %" PRIu64 " tokens\n", h.dict_size);
  std::printf("  sets         %" PRIu64 " (token id bound %" PRIu64 ")\n",
              h.set_count, h.token_id_bound);
  if (h.has_embeddings) {
    std::printf("  embeddings   %" PRIu64 " rows x dim %" PRIu64 "%s\n",
                h.embed_rows, h.embed_dim,
                h.has_quantized ? " (stored int8 tier)" : "");
  } else {
    std::printf("  embeddings   none\n");
  }
  std::printf("  sections     %u\n", h.section_count);
  // Re-open is cheap; dump the section table via the public header only.
  std::printf("  %-14s %12s %12s %10s\n", "kind", "offset", "length", "crc");
  // The view does not expose the table directly; recover it from the file.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, sizeof(koios::io::V4Header), SEEK_SET);
      for (uint32_t i = 0; i < h.section_count; ++i) {
        koios::io::SectionEntry e;
        if (std::fread(&e, sizeof(e), 1, f) != 1) break;
        std::printf("  %-14s %12" PRIu64 " %12" PRIu64 " 0x%08x\n",
                    SectionName(e.kind), e.offset, e.length, e.crc);
      }
      std::fclose(f);
    }
  }
  return 0;
}

int Verify(const std::string& path) {
  auto version = PeekRepositoryVersion(path);
  if (!version.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", version.status().ToString().c_str());
    return 2;
  }
  if (version.value() == 4) {
    auto view = MmapRepositoryView::Open(path, MmapOptions{.verify = true});
    if (!view.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", view.status().ToString().c_str());
      return 2;
    }
    // Borrowing runs the remaining structural validation (offset spans,
    // row-table bijection) that eager CRC alone does not cover.
    auto dict = view.value()->BorrowDictionary();
    if (!dict.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", dict.status().ToString().c_str());
      return 2;
    }
    auto sets = view.value()->BorrowSets();
    if (!sets.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", sets.status().ToString().c_str());
      return 2;
    }
    if (view.value()->has_embeddings()) {
      auto store = view.value()->BorrowEmbeddings();
      if (!store.ok()) {
        std::fprintf(stderr, "FAIL: %s\n", store.status().ToString().c_str());
        return 2;
      }
    }
  } else {
    auto repo = LoadRepository(path);
    if (!repo.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", repo.status().ToString().c_str());
      return 2;
    }
  }
  std::printf("OK: %s (v%u)\n", path.c_str(), version.value());
  return 0;
}

int Convert(const std::string& in, const std::string& out, bool to_v3) {
  auto repo = LoadRepository(in);
  if (!repo.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", in.c_str(),
                 repo.status().ToString().c_str());
    return 2;
  }
  const koios::embedding::EmbeddingStore* store =
      repo.value().has_embeddings ? &repo.value().store : nullptr;
  const auto status =
      to_v3 ? SaveRepository(repo.value().dict, repo.value().sets, store, out)
            : SaveRepositoryV4(repo.value().dict, repo.value().sets, store, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", out.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s (v%d)\n", out.c_str(), to_v3 ? 3 : 4);
  return 0;
}

// What a sharded open replicates vs partitions, for capacity planning
// before anyone passes --shards to the daemon. Every shard shares the
// dictionary, embeddings and neighbor index (for a v4 file those are
// mmap'd read-only pages shared for free); each owns a contiguous slice
// of the sets, whose only per-shard cost is the rebased offsets copy.
int Shard(const std::string& path, size_t num_shards) {
  if (num_shards < 1) {
    std::fprintf(stderr, "error: shard count must be >= 1\n");
    return 2;
  }
  auto version = PeekRepositoryVersion(path);
  if (!version.ok()) {
    std::fprintf(stderr, "error: %s\n", version.status().ToString().c_str());
    return 2;
  }

  // Either path yields the same plan; v4 avoids materializing the sets.
  auto report = [&](const koios::index::SetCollection& sets,
                    size_t dict_bytes, size_t embed_bytes) {
    const auto plans = koios::io::PlanShards(sets, num_shards);
    std::printf("%s: %zu sets, %zu tokens -> %zu shard(s)\n", path.c_str(),
                sets.size(), sets.TotalTokens(), plans.size());
    if (plans.size() < num_shards) {
      std::printf("  (requested %zu; clamped to the set count)\n", num_shards);
    }
    std::printf("  replicated per shard: dict %zu bytes, embeddings %zu "
                "bytes (shared pages when mmap'd)\n",
                dict_bytes, embed_bytes);
    std::printf("  %-6s %12s %12s %12s %14s %14s\n", "shard", "first-set",
                "sets", "tokens", "postings-B", "offsets-B");
    for (size_t i = 0; i < plans.size(); ++i) {
      const auto& p = plans[i];
      std::printf("  %-6zu %12u %12zu %12zu %14zu %14zu\n", i, p.first_set,
                  p.set_count, p.token_count, p.postings_bytes,
                  p.offsets_bytes);
    }
    return 0;
  };

  if (version.value() == 4) {
    auto view = MmapRepositoryView::Open(path);
    if (!view.ok()) {
      std::fprintf(stderr, "error: %s\n", view.status().ToString().c_str());
      return 2;
    }
    auto sets = view.value()->BorrowSets();
    if (!sets.ok()) {
      std::fprintf(stderr, "error: %s\n", sets.status().ToString().c_str());
      return 2;
    }
    auto dict = view.value()->BorrowDictionary();
    if (!dict.ok()) {
      std::fprintf(stderr, "error: %s\n", dict.status().ToString().c_str());
      return 2;
    }
    size_t embed_bytes = 0;
    if (view.value()->has_embeddings()) {
      const auto& h = view.value()->header();
      embed_bytes = static_cast<size_t>(h.embed_rows) *
                    static_cast<size_t>(h.embed_dim) * sizeof(double);
    }
    return report(sets.value(), dict.value().MemoryUsageBytes(), embed_bytes);
  }
  auto repo = LoadRepository(path);
  if (!repo.ok()) {
    std::fprintf(stderr, "error: %s\n", repo.status().ToString().c_str());
    return 2;
  }
  return report(repo.value().sets, repo.value().dict.MemoryUsageBytes(),
                repo.value().has_embeddings
                    ? repo.value().store.MemoryUsageBytes()
                    : 0);
}

int Usage() {
  std::fprintf(stderr,
               "usage: koios_snapshot inspect <file>\n"
               "       koios_snapshot verify <file>\n"
               "       koios_snapshot convert [--v3] <in> <out>\n"
               "       koios_snapshot shard <file> <num-shards>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "inspect") return Inspect(argv[2]);
  if (cmd == "verify") return Verify(argv[2]);
  if (cmd == "shard") {
    if (argc != 4) return Usage();
    return Shard(argv[2], static_cast<size_t>(std::atoll(argv[3])));
  }
  if (cmd == "convert") {
    bool to_v3 = false;
    int arg = 2;
    if (std::strcmp(argv[arg], "--v3") == 0) {
      to_v3 = true;
      ++arg;
    }
    if (argc != arg + 2) return Usage();
    return Convert(argv[arg], argv[arg + 1], to_v3);
  }
  return Usage();
}
