// make_golden_fixtures — regenerates the checked-in compatibility fixtures
// under tests/testdata/ (golden_v1.repo, golden_v3.repo).
//
// The corpus here MUST stay byte-for-byte in sync with MakeFixture() in
// tests/repository_v4_test.cc: the compat tests load the checked-in files
// and compare against a freshly built fixture. It is deliberately tiny,
// hand-seeded and RNG-free so the binaries are reproducible forever.
//
//   make_golden_fixtures <output-dir>

#include <cstdio>
#include <string>
#include <vector>

#include "koios/embedding/embedding_store.h"
#include "koios/index/set_collection.h"
#include "koios/io/serialization.h"
#include "koios/text/dictionary.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_fixtures <output-dir>\n");
    return 1;
  }
  const std::string dir = argv[1];

  koios::text::Dictionary dict;
  for (int t = 0; t < 10; ++t) dict.Intern("token_" + std::to_string(t));
  koios::index::SetCollection sets;
  sets.AddSet(std::vector<koios::TokenId>{0, 1, 2});
  sets.AddSet(std::vector<koios::TokenId>{2, 3, 4, 5});
  sets.AddSet(std::vector<koios::TokenId>{5, 6});
  sets.AddSet(std::vector<koios::TokenId>{0, 7, 8, 9});
  sets.AddSet(std::vector<koios::TokenId>{1, 4, 9});
  koios::embedding::EmbeddingStore store(4);
  for (koios::TokenId t = 0; t < 10; ++t) {
    if (t == 6) continue;  // one OOV token
    const float a = 1.0f + static_cast<float>(t);
    store.Add(t, std::vector<float>{a, 1.0f / a, 0.25f * a,
                                    static_cast<float>(t % 3)});
  }
  store.Finalize();

  const auto v1 = koios::io::SaveRepositoryLegacyV1(dict, sets, &store,
                                                    dir + "/golden_v1.repo");
  if (!v1.ok()) {
    std::fprintf(stderr, "v1: %s\n", v1.ToString().c_str());
    return 2;
  }
  const auto v3 =
      koios::io::SaveRepository(dict, sets, &store, dir + "/golden_v3.repo");
  if (!v3.ok()) {
    std::fprintf(stderr, "v3: %s\n", v3.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s/golden_v1.repo and %s/golden_v3.repo\n", dir.c_str(),
              dir.c_str());
  return 0;
}
