// make_corpus — writes a synthetic string repository to a text file (one
// set per line, whitespace-separated elements), in the format koios_cli
// consumes. Together they give a full file-driven workflow:
//
//   ./make_corpus /tmp/repo.txt --sets 500 --words 800 --seed 7
//   ./koios_cli /tmp/repo.txt --k 5 --alpha 0.5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "koios/data/string_corpus.h"

int main(int argc, char** argv) {
  using namespace koios;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output.txt> [--sets N] [--words N] [--typos N]"
                 " [--min-size N] [--max-size N] [--seed S]\n",
                 argv[0]);
    return 2;
  }
  data::StringCorpusSpec spec;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    const long value = std::atol(argv[i + 1]);
    if (arg == "--sets") {
      spec.num_sets = static_cast<size_t>(value);
    } else if (arg == "--words") {
      spec.num_base_words = static_cast<size_t>(value);
    } else if (arg == "--typos") {
      spec.typos_per_word = static_cast<size_t>(value);
    } else if (arg == "--min-size") {
      spec.min_set_size = static_cast<size_t>(value);
    } else if (arg == "--max-size") {
      spec.max_set_size = static_cast<size_t>(value);
    } else if (arg == "--seed") {
      spec.seed = static_cast<uint64_t>(value);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  const data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot create %s\n", argv[1]);
    return 1;
  }
  for (SetId id = 0; id < corpus.sets.size(); ++id) {
    bool first = true;
    for (TokenId t : corpus.sets.Tokens(id)) {
      if (!first) out << ' ';
      out << corpus.dict.TokenOf(t);
      first = false;
    }
    out << '\n';
  }
  std::printf("wrote %zu sets (%zu distinct elements) to %s\n",
              corpus.sets.size(), corpus.vocabulary.size(), argv[1]);
  return 0;
}
