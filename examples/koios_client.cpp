// koios_client — the bundled CLI client for koios_serverd, built on
// net::BlockingClient (deadline-bounded IO, retry-after honoring backoff).
// The serverd smoke script and bench_serverd_chaos drive the same library;
// this binary is the by-hand entry point:
//
//   ./koios_client --port 7070 --ping
//   ./koios_client --port 7070 --query "3 17 294" --k 5
//   ./koios_client --port 7070 --stdin < queries.txt     # one batch
//   ./koios_client --port 7070 --http /metrics
//
// Exit status: 0 success, 1 usage, 2 connect failure, 3 request failed
// (the response's status line is printed to stderr).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "koios/net/client.h"

namespace {

std::vector<koios::TokenId> ParseTokens(const std::string& text) {
  std::vector<koios::TokenId> tokens;
  std::istringstream in(text);
  unsigned long t = 0;
  while (in >> t) tokens.push_back(static_cast<koios::TokenId>(t));
  return tokens;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host ADDR] <mode> [options]\n"
               "modes:\n"
               "  --ping                 binary-protocol liveness check\n"
               "  --query \"T T T...\"     one search (space-separated token "
               "ids)\n"
               "  --stdin                batch: one token-id line per query, "
               "sent\n"
               "                         as a single kSearchMany\n"
               "  --http PATH            GET PATH (e.g. /readyz, /metrics); "
               "prints\n"
               "                         the body, exits 0 iff HTTP 200\n"
               "options: --k N (10)  --alpha X (0.8)  --deadline-ms N (0)\n"
               "         --retries N (3, honoring server retry_after_ms)\n"
               "         --timeout-ms N (30000 io budget)\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace koios;

  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string query_text;
  std::string http_path;
  bool ping = false;
  bool from_stdin = false;
  uint32_t k = 10;
  double alpha = 0.8;
  uint32_t deadline_ms = 0;
  int retries = 3;
  net::ClientOptions client_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--query" && i + 1 < argc) {
      query_text = argv[++i];
    } else if (arg == "--http" && i + 1 < argc) {
      http_path = argv[++i];
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--stdin") {
      from_stdin = true;
    } else if (arg == "--k" && i + 1 < argc) {
      k = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--alpha" && i + 1 < argc) {
      alpha = std::atof(argv[++i]);
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadline_ms = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      client_options.io_timeout =
          std::chrono::milliseconds(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (port == 0) return Usage(argv[0]);

  if (!http_path.empty()) {
    int status_code = 0;
    auto body = net::HttpGet(host, port, http_path, &status_code,
                             client_options.io_timeout);
    if (!body.ok()) {
      std::fprintf(stderr, "error: %s\n", body.status().ToString().c_str());
      return 2;
    }
    std::fputs(body.value().c_str(), stdout);
    return status_code == 200 ? 0 : 3;
  }

  auto client = net::BlockingClient::Connect(host, port, client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 2;
  }

  if (ping) {
    if (util::Status s = client.value().Ping(); !s.ok()) {
      std::fprintf(stderr, "ping: %s\n", s.ToString().c_str());
      return 3;
    }
    std::printf("pong\n");
    return 0;
  }

  if (from_stdin) {
    std::vector<std::vector<TokenId>> queries;
    std::string line;
    while (std::getline(std::cin, line)) {
      std::vector<TokenId> tokens = ParseTokens(line);
      if (!tokens.empty()) queries.push_back(std::move(tokens));
    }
    if (queries.empty()) {
      std::fprintf(stderr, "no queries on stdin\n");
      return 1;
    }
    bool any_failed = false;
    util::Status status = client.value().SearchMany(
        queries, k, alpha, deadline_ms, [&](const net::ResponseFrame& frame) {
          if (frame.code != net::WireCode::kOk) {
            std::fprintf(stderr, "query %u: %s\n", frame.query_index,
                         net::ResponseToStatus(frame).ToString().c_str());
            any_failed = true;
            return;
          }
          for (const core::ResultEntry& e : frame.results) {
            std::printf("%u\t%u\t%.6f\t%s\n", frame.query_index, e.set,
                        e.score, e.exact ? "exact" : "lower-bound");
          }
        });
    if (!status.ok()) {
      std::fprintf(stderr, "batch: %s\n", status.ToString().c_str());
      return 3;
    }
    return any_failed ? 3 : 0;
  }

  const std::vector<TokenId> tokens = ParseTokens(query_text);
  if (tokens.empty()) return Usage(argv[0]);
  auto results =
      client.value().SearchWithBackoff(tokens, k, alpha, deadline_ms, retries);
  if (!results.ok()) {
    std::fprintf(stderr, "search: %s\n", results.status().ToString().c_str());
    return 3;
  }
  for (const core::ResultEntry& e : results.value()) {
    std::printf("%u\t%.6f\t%s\n", e.set, e.score,
                e.exact ? "exact" : "lower-bound");
  }
  return 0;
}
