// The paper's Fig. 1 worked example, end to end: vanilla, fuzzy, and
// semantic overlap produce different top-1 answers for the same query, and
// greedy matching differs from exact matching. Run it to see the numbers
// from Examples 1-2 of the paper.
#include <cstdio>
#include <string>
#include <vector>

#include "koios/koios.h"

namespace {

// Fig. 1 semantic similarities (edges with sim >= 0.7 plus one weak edge).
struct EdgeSpec {
  const char* a;
  const char* b;
  double sim;
};
constexpr EdgeSpec kSemanticEdges[] = {
    {"Blaine", "Blain", 0.99},      {"Seattle", "MtPleasant", 0.7},
    {"Columbia", "Lexington", 0.7}, {"Charleston", "Lexington", 0.7},
    {"LA", "WestCoast", 0.75},      {"Seattle", "Sacramento", 0.81},
    {"LA", "Southern", 0.75},       {"Columbia", "SC", 0.85},
    {"Charleston", "SC", 0.8},      {"Charleston", "Southern", 0.7},
    {"BigApple", "NewYorkCity", 0.9}, {"Seattle", "Minnesota", 0.8},
    {"Columbia", "Southern", 0.5},  // below alpha: must not contribute
};

// Explicit-table similarity for the example's edge weights.
class TableSimilarity : public koios::sim::SimilarityFunction {
 public:
  void Set(koios::TokenId a, koios::TokenId b, double s) {
    entries_.push_back({a, b, s});
  }
  koios::Score Similarity(koios::TokenId a, koios::TokenId b) const override {
    if (a == b) return 1.0;
    for (const auto& e : entries_) {
      if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) return e.s;
    }
    return 0.0;
  }

 private:
  struct Entry {
    koios::TokenId a, b;
    double s;
  };
  std::vector<Entry> entries_;
};

}  // namespace

int main() {
  using namespace koios;

  text::Dictionary dict;
  auto ids = [&dict](std::initializer_list<const char*> words) {
    std::vector<TokenId> out;
    for (const char* w : words) out.push_back(dict.Intern(w));
    return out;
  };
  const auto q = ids({"LA", "Seattle", "Columbia", "Blaine", "BigApple",
                      "Charleston"});
  const auto c1 = ids({"LA", "Blain", "Appleton", "MtPleasant", "Lexington",
                       "WestCoast"});
  const auto c2 = ids({"LA", "Sacramento", "Southern", "Blain", "SC",
                       "Minnesota", "NewYorkCity"});

  index::SetCollection sets;
  sets.AddSet(c1);
  sets.AddSet(c2);

  // --- vanilla overlap ------------------------------------------------------
  std::vector<TokenId> sorted_q = q;
  std::sort(sorted_q.begin(), sorted_q.end());
  std::printf("Vanilla-O(Q,C1) = %zu, Vanilla-O(Q,C2) = %zu   (paper: 1, 1)\n",
              sets.VanillaOverlap(sorted_q, 0), sets.VanillaOverlap(sorted_q, 1));

  // --- fuzzy overlap (Jaccard on 3-grams) ------------------------------------
  sim::JaccardQGramSimilarity fuzzy(&dict, 3);
  std::printf("Jaccard(Blaine, Blain) = %.2f          (paper: 3/4)\n",
              text::QGramJaccard("Blaine", "Blain"));
  std::printf("Jaccard(BigApple, Appleton) = %.2f     (paper: 1/3)\n",
              text::QGramJaccard("BigApple", "Appleton"));
  const Score fuzzy_c1 = matching::SemanticOverlap(q, c1, fuzzy, 0.3);
  const Score fuzzy_c2 = matching::SemanticOverlap(q, c2, fuzzy, 0.3);
  std::printf("Fuzzy-O(Q,C1) = %.2f, Fuzzy-O(Q,C2) = %.2f -> fuzzy top-1 = %s"
              "  (paper: C1 — the wrong call)\n",
              fuzzy_c1, fuzzy_c2, fuzzy_c1 > fuzzy_c2 ? "C1" : "C2");

  // --- semantic overlap -------------------------------------------------------
  TableSimilarity semantic;
  for (const auto& e : kSemanticEdges) {
    semantic.Set(dict.Lookup(e.a), dict.Lookup(e.b), e.sim);
  }
  const Score so_c1 = matching::SemanticOverlap(q, c1, semantic, 0.7);
  const Score so_c2 = matching::SemanticOverlap(q, c2, semantic, 0.7);
  const Score greedy_c2 = matching::GreedySemanticOverlap(q, c2, semantic, 0.7);
  std::printf("Semantic-O(Q,C1) = %.2f, Semantic-O(Q,C2) = %.2f -> semantic"
              " top-1 = %s (paper: C2)\n",
              so_c1, so_c2, so_c2 > so_c1 ? "C2" : "C1");
  std::printf("Greedy matching on C2 = %.2f <= exact %.2f (greedy is not"
              " optimal, Example 2)\n", greedy_c2, so_c2);

  // --- full Koios search on the example ---------------------------------------
  std::vector<TokenId> vocab;
  for (TokenId t = 0; t < dict.size(); ++t) vocab.push_back(t);
  sim::ExactKnnIndex knn(vocab, &semantic);
  core::KoiosSearcher searcher(&sets, &knn);
  core::SearchParams params;
  params.k = 1;
  params.alpha = 0.7;
  const auto result = searcher.Search(q, params);
  std::printf("\nKoios top-1: set C%u with SO %.2f\n", result.topk[0].set + 1,
              result.topk[0].score);
  std::printf("%s\n", result.stats.ToString().c_str());
  return 0;
}
