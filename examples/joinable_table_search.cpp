// Joinable-table search — the paper's motivating data-lake scenario: given
// a query column, find columns in a repository that can be *semantically*
// joined with it, i.e. whose value sets have high semantic overlap even
// when the value strings differ (synonyms, formatting variants, typos).
//
// The demo generates an OpenData-like repository of "columns" (sets of
// cell values drawn from Zipfian concepts), runs vanilla top-k and
// semantic top-k side by side, and shows the joinable columns that vanilla
// overlap misses — the paper's Fig. 8 observation, as a runnable program.
#include <cstdio>
#include <set>
#include <vector>

#include "koios/koios.h"

int main() {
  using namespace koios;

  // OpenData-like repository of columns (scaled down for the demo).
  data::CorpusSpec spec = data::OpenDataSpec(0.02);
  spec.max_set_size = 300;
  data::Corpus corpus = data::GenerateCorpus(spec);
  std::printf("repository: %zu columns, vocabulary %zu values\n",
              corpus.NumSets(), corpus.vocabulary.size());

  // Synthetic embeddings: concept clusters play the role of synonym groups
  // ("NYC" / "New York City") and near-duplicates across formatting.
  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 48;
  model_spec.avg_cluster_size = 10.0;
  model_spec.noise_sigma = 0.35;
  model_spec.coverage = 0.85;  // some cell values are out-of-vocabulary
  model_spec.seed = 11;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity similarity(&model.store());
  sim::ExactKnnIndex knn(corpus.vocabulary, &similarity);

  core::KoiosSearcher searcher(&corpus.sets, &knn);
  baselines::VanillaTopK vanilla(&corpus.sets);

  // Query: one of the repository's own columns.
  const SetId query_column = 17;
  std::vector<TokenId> query(corpus.sets.Tokens(query_column).begin(),
                             corpus.sets.Tokens(query_column).end());
  std::printf("query: column %u with %zu values\n\n", query_column,
              query.size());

  core::SearchParams params;
  params.k = 8;
  params.alpha = 0.75;
  const auto semantic = searcher.Search(query, params);
  const auto syntactic = vanilla.Search(query, params.k);

  std::set<SetId> vanilla_sets;
  for (const auto& e : syntactic.topk) vanilla_sets.insert(e.set);

  std::printf("%-8s | %-18s | %-16s | %s\n", "column", "semantic overlap",
              "vanilla overlap", "found by vanilla search?");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::vector<TokenId> sorted_query = query;
  std::sort(sorted_query.begin(), sorted_query.end());
  for (const auto& entry : semantic.topk) {
    const size_t vanilla_score =
        corpus.sets.VanillaOverlap(sorted_query, entry.set);
    std::printf("%-8u | %18.2f | %16zu | %s\n", entry.set, entry.score,
                vanilla_score,
                vanilla_sets.count(entry.set) ? "yes" : "NO  <- semantic-only");
  }

  std::printf("\nColumns marked NO are joinable through synonym/variant value"
              " matches that\nexact-match overlap cannot see (paper Fig. 8).\n");
  std::printf("\nfilter statistics for the semantic search:\n%s\n",
              semantic.stats.ToString().c_str());
  return 0;
}
