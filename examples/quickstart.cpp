// Quickstart: build a small repository of string sets, plug in a synthetic
// embedding model, and run a top-k semantic overlap search.
//
//   $ ./quickstart
//
// Walks through the full public API surface:
//   Dictionary -> SetCollection -> EmbeddingStore -> CosineEmbeddingSimilarity
//   -> ExactKnnIndex -> KoiosSearcher.
#include <cstdio>
#include <string>
#include <vector>

#include "koios/koios.h"

int main() {
  using namespace koios;

  // ---- 1. Intern string elements into a dictionary ------------------------
  text::Dictionary dict;
  auto tokens = [&dict](std::initializer_list<const char*> words) {
    std::vector<TokenId> ids;
    for (const char* word : words) ids.push_back(dict.Intern(word));
    return ids;
  };

  // A tiny repository of "city" sets (the paper's running example domain).
  index::SetCollection repository;
  repository.AddSet(tokens({"la", "blain", "appleton", "mtpleasant"}));
  repository.AddSet(tokens({"la", "sacramento", "blain", "sc", "nyc"}));
  repository.AddSet(tokens({"portland", "seattle", "tacoma"}));
  repository.AddSet(tokens({"boston", "cambridge", "somerville"}));
  std::printf("repository: %zu sets, %zu distinct elements\n",
              repository.size(), repository.DistinctTokens());

  // ---- 2. Provide element embeddings --------------------------------------
  // Real applications load pre-trained vectors (e.g. FastText). Here we use
  // the synthetic concept-cluster model so the example is self-contained:
  // tokens interned above all land in one small vocabulary.
  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = dict.size() + 16;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 3.0;  // small tight concepts
  model_spec.noise_sigma = 0.25;
  model_spec.seed = 7;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity similarity(&model.store());

  // ---- 3. Build the neighbor index over the repository vocabulary ---------
  index::InvertedIndex inverted(repository);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &similarity);

  // ---- 4. Search -----------------------------------------------------------
  core::KoiosSearcher searcher(&repository, &knn);
  core::SearchParams params;
  params.k = 2;
  params.alpha = 0.7;  // element pairs below 0.7 cosine contribute nothing

  const std::vector<TokenId> query =
      tokens({"la", "seattle", "columbia", "blaine", "bigapple"});
  const core::SearchResult result = searcher.Search(query, params);

  std::printf("top-%zu results for the query:\n", params.k);
  for (const auto& entry : result.topk) {
    std::printf("  set %u  semantic overlap %.3f  {", entry.set, entry.score);
    for (TokenId t : repository.Tokens(entry.set)) {
      { const std::string_view tok = dict.TokenOf(t); std::printf(" %.*s", static_cast<int>(tok.size()), tok.data()); }
    }
    std::printf(" }\n");
  }
  std::printf("\nsearch statistics:\n%s\n", result.stats.ToString().c_str());
  return 0;
}
