// Semantic deduplication — a data-cleaning application of semantic overlap:
// find near-duplicate records (sets of field values) whose values differ by
// typos, using q-gram Jaccard as the element similarity. Demonstrates that
// Koios is similarity-function agnostic: the same engine that runs on
// embeddings runs on purely syntactic similarities (paper §IV).
#include <cstdio>
#include <vector>

#include "koios/koios.h"
#include "koios/data/string_corpus.h"

int main() {
  using namespace koios;

  // A corpus of "records" over a typo-rich string vocabulary.
  data::StringCorpusSpec spec;
  spec.num_sets = 400;
  spec.num_base_words = 500;
  spec.typos_per_word = 2;
  spec.min_set_size = 5;
  spec.max_set_size = 12;
  spec.seed = 99;
  data::StringCorpus corpus = data::GenerateStringCorpus(spec);
  std::printf("records: %zu, distinct values: %zu\n\n", corpus.sets.size(),
              corpus.vocabulary.size());

  // Element similarity: Jaccard over character 3-grams (no embeddings).
  sim::JaccardQGramSimilarity similarity(&corpus.dict, 3);
  sim::ExactKnnIndex knn(corpus.vocabulary, &similarity);
  core::KoiosSearcher searcher(&corpus.sets, &knn);

  // Pick a record and look for its near-duplicates.
  const SetId record = 42;
  std::vector<TokenId> query(corpus.sets.Tokens(record).begin(),
                             corpus.sets.Tokens(record).end());
  std::printf("query record %u:\n ", record);
  for (TokenId t : query) { const std::string_view tok = corpus.dict.TokenOf(t); std::printf(" %.*s", static_cast<int>(tok.size()), tok.data()); }
  std::printf("\n\n");

  core::SearchParams params;
  params.k = 5;
  params.alpha = 0.5;  // typo variants share ~half their 3-grams
  const auto result = searcher.Search(query, params);

  std::printf("nearest records by semantic overlap (dedup candidates):\n");
  for (const auto& entry : result.topk) {
    const double normalized = entry.score / static_cast<double>(query.size());
    std::printf("  record %-5u SO %.2f (normalized %.2f)%s\n", entry.set,
                entry.score, normalized,
                entry.set == record ? "  <- the record itself" : "");
    std::printf("   ");
    for (TokenId t : corpus.sets.Tokens(entry.set)) {
      { const std::string_view tok = corpus.dict.TokenOf(t); std::printf(" %.*s", static_cast<int>(tok.size()), tok.data()); }
    }
    std::printf("\n");
  }
  std::printf(
      "\nRecords scoring close to the query size are near-duplicates: their"
      "\nvalues pair up one-to-one with high q-gram similarity (typo"
      " variants).\n");
  return 0;
}
