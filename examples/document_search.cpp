// Document search — the paper's DBLP scenario: each document is the set of
// distinct words in its title+abstract; semantic overlap search finds
// related documents even when they use different terminology.
//
// This demo exercises the *text pipeline* (tokenizer -> dictionary) on raw
// strings, then searches with Koios, comparing k and alpha settings.
#include <cstdio>
#include <string>
#include <vector>

#include "koios/koios.h"

namespace {

// A miniature "paper abstract" corpus. Documents 0-2 are about set
// similarity; 3-5 about graph matching; 6-8 about unrelated systems topics.
const char* kDocuments[] = {
    "Set similarity search with overlap measures for data cleaning tasks",
    "Efficient set similarity joins using prefix filtering and overlap",
    "Fuzzy set matching tolerates typos in string collections overlap",
    "Maximum bipartite graph matching with the Hungarian algorithm",
    "Weighted graph matching and assignment problems a survey",
    "Bipartite matching bounds for combinatorial assignment problems",
    "A transactional storage engine for high throughput workloads",
    "Query optimization in distributed database systems with statistics",
    "Consensus protocols for replicated state machines in clusters",
};

}  // namespace

int main() {
  using namespace koios;

  // ---- text pipeline -------------------------------------------------------
  text::Dictionary dict;
  index::SetCollection docs;
  text::TokenizerOptions tokenizer_options;
  for (const char* doc : kDocuments) {
    std::vector<TokenId> ids;
    for (const auto& word : text::TokenizeToSet(doc, tokenizer_options)) {
      ids.push_back(dict.Intern(word));
    }
    docs.AddSet(ids);
  }
  std::printf("indexed %zu documents, %zu distinct words\n\n", docs.size(),
              dict.size());

  // ---- embeddings ----------------------------------------------------------
  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = dict.size() + 8;
  model_spec.dim = 32;
  model_spec.avg_cluster_size = 4.0;
  model_spec.noise_sigma = 0.3;
  model_spec.seed = 3;
  embedding::SyntheticEmbeddingModel model(model_spec);
  sim::CosineEmbeddingSimilarity similarity(&model.store());
  index::InvertedIndex inverted(docs);
  sim::ExactKnnIndex knn(inverted.Vocabulary(), &similarity);
  core::KoiosSearcher searcher(&docs, &knn);

  // ---- query ---------------------------------------------------------------
  const std::string query_text =
      "searching set collections by similarity and overlap";
  std::vector<TokenId> query;
  for (const auto& word : text::TokenizeToSet(query_text, tokenizer_options)) {
    query.push_back(dict.Intern(word));
  }
  std::printf("query: \"%s\"\n\n", query_text.c_str());

  for (double alpha : {0.9, 0.7}) {
    core::SearchParams params;
    params.k = 3;
    params.alpha = alpha;
    const auto result = searcher.Search(query, params);
    std::printf("top-%zu with alpha = %.1f:\n", params.k, alpha);
    for (const auto& entry : result.topk) {
      std::printf("  [SO %.2f] %s\n", entry.score, kDocuments[entry.set]);
    }
    std::printf("\n");
  }
  std::printf(
      "Lower alpha admits weaker word pairs into the matching, pulling in\n"
      "documents related through vocabulary overlap rather than exact terms.\n");
  return 0;
}
