// koios_serve: the serving path end to end — build a repository, persist
// it with io::SaveRepository, load it back as an immutable serve::Snapshot,
// and run a concurrent query mix through a serve::QueryEngine with
// admission control, deadlines, and batched SearchMany.
//
//   $ ./koios_serve [repo.bin]
//
// With a path argument the repository file is written there (and kept);
// without, a temporary file is used and removed. This is the demo driver
// of the serve subsystem; for measurements see bench_serve_throughput.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "koios/koios.h"

int main(int argc, char** argv) {
  using namespace koios;

  // ---- 1. Build and persist a repository ----------------------------------
  data::CorpusSpec spec;
  spec.name = "serve-demo";
  spec.num_sets = 1500;
  spec.vocab_size = 2000;
  spec.element_skew = 0.7;
  spec.size_distribution = data::SizeDistribution::kNormal;
  spec.min_set_size = 6;
  spec.max_set_size = 30;
  spec.avg_set_size = 14.0;
  spec.size_stddev = 6.0;
  spec.seed = 99;
  data::Corpus corpus = data::GenerateCorpus(spec);

  text::Dictionary dict;
  for (size_t t = 0; t < spec.vocab_size; ++t) {
    dict.Intern("token" + std::to_string(t));
  }
  embedding::SyntheticModelSpec model_spec;
  model_spec.vocab_size = spec.vocab_size;
  model_spec.dim = 32;
  model_spec.seed = 100;
  embedding::SyntheticEmbeddingModel model(model_spec);

  const std::string path =
      argc > 1 ? argv[1] : std::string("/tmp/koios_serve_demo.bin");
  auto saved = io::SaveRepository(dict, corpus.sets, &model.store(), path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("repository saved: %s (%zu sets, %zu tokens)\n", path.c_str(),
              corpus.sets.size(), dict.size());

  // ---- 2. Load it as an immutable snapshot and start an engine ------------
  auto snapshot = serve::Snapshot::Load(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 snapshot.status().ToString().c_str());
    return 1;
  }

  serve::EngineOptions options;
  options.num_threads = 4;            // 4 queries in flight
  options.max_queue = 64;             // 65th concurrent submit is rejected
  options.default_deadline = std::chrono::milliseconds(2000);
  serve::QueryEngine engine(snapshot.value(), options);

  core::SearchParams params;
  params.k = 10;
  params.alpha = 0.8;

  // ---- 3. A batched lookup: shared tokens prewarmed once ------------------
  std::vector<std::vector<TokenId>> batch;
  for (SetId id = 0; id < 8; ++id) {
    const auto tokens = snapshot.value()->sets().Tokens(id * 97 % 1500);
    batch.emplace_back(tokens.begin(), tokens.end());
  }
  const auto batch_results = engine.SearchMany(batch, params);
  size_t batch_ok = 0;
  for (const auto& result : batch_results) batch_ok += result.ok() ? 1 : 0;
  std::printf("SearchMany: %zu/%zu queries answered\n", batch_ok,
              batch_results.size());

  // ---- 4. Concurrent clients through Submit -------------------------------
  constexpr size_t kClients = 4, kPerClient = 25;
  std::vector<std::thread> clients;
  std::atomic<size_t> answered{0}, rejected{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const SetId qid = static_cast<SetId>((c * kPerClient + i * 31) % 1500);
        const auto tokens = snapshot.value()->sets().Tokens(qid);
        auto result =
            engine.Submit({tokens.begin(), tokens.end()}, params).get();
        if (result.ok()) {
          ++answered;
        } else {
          ++rejected;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // ---- 5. Serving stats ---------------------------------------------------
  const serve::EngineCounters counters = engine.counters();
  std::printf("clients done: %zu answered, %zu rejected\n", answered.load(),
              rejected.load());
  std::printf("engine: submitted=%llu completed=%llu queue_full=%llu "
              "deadline=%llu\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(counters.completed),
              static_cast<unsigned long long>(counters.rejected_queue_full),
              static_cast<unsigned long long>(counters.deadline_exceeded));
  std::printf("latency: %s\n", engine.latency().Summary().c_str());
  auto* cache_owner =
      dynamic_cast<sim::BatchedNeighborIndex*>(snapshot.value()->index());
  if (cache_owner != nullptr) {
    const sim::CursorCacheStats cache = cache_owner->cursor_cache_stats();
    std::printf("cursor cache: %llu hits / %llu misses (cross-query reuse)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses));
  }
  if (argc <= 1) std::remove(path.c_str());
  return 0;
}
