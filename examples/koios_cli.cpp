// koios_cli — file-driven semantic overlap search.
//
// Usage:
//   koios_cli <repository.txt> [options]
//     --query "<tokens...>"   query tokens (whitespace separated); if
//                             omitted, the first repository line is used
//     --k N                   result size (default 10)
//     --alpha A               element similarity threshold (default 0.5)
//     --sim jaccard|embedding element similarity (default jaccard)
//     --theta T               switch to threshold search with threshold T
//     --many-to-one           use the many-to-one overlap measure
//
// Repository format: one set per line, elements whitespace-separated.
// With --sim jaccard the tool is fully self-contained (q-gram similarity
// over the strings); with --sim embedding a synthetic embedding model is
// derived deterministically from the vocabulary (demo purposes).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "koios/core/many_to_one.h"
#include "koios/core/threshold_search.h"
#include "koios/koios.h"

namespace {

struct CliOptions {
  std::string repository_path;
  std::string query_text;
  size_t k = 10;
  double alpha = 0.5;
  double theta = -1.0;  // < 0: top-k mode
  bool many_to_one = false;
  std::string sim = "jaccard";
};

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->repository_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      options->query_text = next();
    } else if (arg == "--k") {
      options->k = static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--alpha") {
      options->alpha = std::atof(next());
    } else if (arg == "--theta") {
      options->theta = std::atof(next());
    } else if (arg == "--sim") {
      options->sim = next();
    } else if (arg == "--many-to-one") {
      options->many_to_one = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::vector<koios::TokenId> InternLine(const std::string& line,
                                       koios::text::Dictionary* dict) {
  std::vector<koios::TokenId> ids;
  std::istringstream in(line);
  std::string token;
  while (in >> token) ids.push_back(dict->Intern(token));
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace koios;
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: %s <repository.txt> [--query \"...\"] [--k N]"
                 " [--alpha A] [--sim jaccard|embedding] [--theta T]"
                 " [--many-to-one]\n",
                 argv[0]);
    return 2;
  }

  // ---- load repository ----------------------------------------------------
  std::ifstream in(options.repository_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", options.repository_path.c_str());
    return 1;
  }
  text::Dictionary dict;
  index::SetCollection sets;
  std::string line, first_line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first_line.empty()) first_line = line;
    sets.AddSet(InternLine(line, &dict));
  }
  if (sets.size() == 0) {
    std::fprintf(stderr, "empty repository\n");
    return 1;
  }
  std::printf("repository: %zu sets, %zu distinct elements\n", sets.size(),
              dict.size());

  // ---- similarity + index ---------------------------------------------------
  index::InvertedIndex inverted(sets);
  const auto vocabulary = inverted.Vocabulary();
  std::unique_ptr<sim::SimilarityFunction> similarity;
  std::unique_ptr<embedding::SyntheticEmbeddingModel> model;
  if (options.sim == "embedding") {
    embedding::SyntheticModelSpec spec;
    spec.vocab_size = dict.size();
    spec.dim = 48;
    spec.seed = 12345;
    model = std::make_unique<embedding::SyntheticEmbeddingModel>(spec);
    similarity =
        std::make_unique<sim::CosineEmbeddingSimilarity>(&model->store());
  } else if (options.sim == "jaccard") {
    similarity = std::make_unique<sim::JaccardQGramSimilarity>(&dict, 3);
  } else {
    std::fprintf(stderr, "unknown --sim %s\n", options.sim.c_str());
    return 2;
  }
  sim::ExactKnnIndex knn(vocabulary, similarity.get());

  // ---- query ----------------------------------------------------------------
  const std::string query_line =
      options.query_text.empty() ? first_line : options.query_text;
  const std::vector<TokenId> query = InternLine(query_line, &dict);
  std::printf("query (%zu elements): %s\n\n", query.size(), query_line.c_str());

  auto print_entry = [&](const core::ResultEntry& entry) {
    std::printf("  [SO %.3f]%s ", entry.score, entry.exact ? "" : " (lb)");
    for (TokenId t : sets.Tokens(entry.set)) {
      { const std::string_view tok = dict.TokenOf(t); std::printf(" %.*s", static_cast<int>(tok.size()), tok.data()); }
    }
    std::printf("\n");
  };

  if (options.theta >= 0.0) {
    core::ThresholdSearcher searcher(&sets, &knn);
    core::ThresholdParams params;
    params.theta = options.theta;
    params.alpha = options.alpha;
    const auto result = searcher.Search(query, params);
    std::printf("%zu sets with SO >= %.2f:\n", result.size(), options.theta);
    for (const auto& entry : result) print_entry(entry);
  } else if (options.many_to_one) {
    core::ManyToOneSearcher searcher(&sets, &knn);
    core::SearchParams params;
    params.k = options.k;
    params.alpha = options.alpha;
    const auto result = searcher.Search(query, params);
    std::printf("top-%zu by many-to-one semantic overlap:\n", options.k);
    for (const auto& entry : result.topk) print_entry(entry);
  } else {
    core::KoiosSearcher searcher(&sets, &knn);
    core::SearchParams params;
    params.k = options.k;
    params.alpha = options.alpha;
    const auto result = searcher.Search(query, params);
    std::printf("top-%zu by semantic overlap:\n", options.k);
    for (const auto& entry : result.topk) print_entry(entry);
    std::printf("\n%s\n", result.stats.ToString().c_str());
  }
  return 0;
}
